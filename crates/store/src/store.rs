//! The on-disk run store.
//!
//! Layout of a store root:
//!
//! ```text
//! <root>/
//!   runs/<kk>/<key>/manifest.json   # kk = first two hex chars of key
//!   runs/<kk>/<key>/anon.json       # the anonymized table
//!   tmp/                            # staging for atomic puts
//!   quarantine/                     # corrupt entries set aside by reads/fsck
//!   jobs/<sweep>/<seq>-<key16>.json # claimable job records (distributed sweeps)
//!   leases/<sweep>/<key>.lease      # worker leases on in-flight jobs
//!   journal.jsonl                   # write-ahead event journal
//!   store.lock                      # advisory writer lock (owner identity inside)
//! ```
//!
//! Puts are crash-atomic: both files are written into a unique
//! directory under `tmp/` and the whole directory is `rename(2)`d into
//! place, so a reader can never observe a half-written run. A run
//! directory either has both files (complete) or is garbage that
//! `gc` removes.
//!
//! Reads are self-healing: manifests carry a checksum of the stored
//! `anon.json` bytes, and an entry that fails to parse or verify is
//! moved to `quarantine/` and reported as a cache miss — the
//! orchestrator recomputes it instead of failing the sweep or, worse,
//! replaying a silently corrupted result. [`RunStore::fsck`] runs the
//! same verification store-wide on demand.

use crate::journal::{Journal, JournalEvent};
use crate::key::RunKey;
use crate::lock::StoreLock;
use crate::manifest::RunManifest;
use crate::retry::{transient_io, RetryPolicy};
use crate::sha::sha256_hex;
use secreta_metrics::AnonTable;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One claimable unit of a distributed sweep: everything a worker
/// needs to re-execute a job except the session inputs themselves
/// (those come from the `SweepStarted` invocation in the journal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Sweep this job belongs to.
    pub sweep: String,
    /// Content address of the job (also the lease key).
    pub key: String,
    /// Position in the deterministic expansion order — the merge
    /// order of the final sweep, regardless of completion order.
    pub seq: u64,
    /// Configuration label.
    pub label: String,
    /// Sweep-point value.
    pub value: f64,
    /// RNG seed for the run.
    pub seed: u64,
    /// The method specification as an opaque JSON payload.
    pub spec: Value,
}

/// Failures of store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed at the given path.
    Io(PathBuf, io::Error),
    /// A stored file exists but does not parse as what it should be.
    Corrupt(PathBuf, String),
    /// The store's advisory lock is held by another live process (the
    /// pid recorded in the lock file; 0 when it could not be read).
    Locked(PathBuf, u32),
}

impl StoreError {
    /// Whether retrying the failed operation could plausibly succeed
    /// (transient I/O only; corruption and held locks are not retried).
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(_, e) => transient_io(e),
            StoreError::Corrupt(_, _) | StoreError::Locked(_, _) => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store i/o error at {}: {e}", path.display()),
            StoreError::Corrupt(path, msg) => {
                write!(f, "corrupt store entry at {}: {msg}", path.display())
            }
            StoreError::Locked(path, pid) => write!(
                f,
                "store is locked by pid {pid} ({}); wait for it to finish or remove a stale lock",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// A run read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// Metadata and measurements.
    pub manifest: RunManifest,
    /// The anonymized table the run produced.
    pub anon: AnonTable,
}

/// What reading one run directory found.
#[derive(Debug)]
enum ReadOutcome {
    /// No complete entry at this key.
    Missing,
    /// A parsed, checksum-verified run.
    Complete(Box<StoredRun>),
    /// An entry exists but is unusable: the offending path and why.
    Corrupt(PathBuf, String),
}

/// A content-addressed store of completed runs.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path) -> impl FnOnce(io::Error) -> StoreError + '_ {
    move |e| StoreError::Io(path.to_path_buf(), e)
}

impl RunStore {
    /// Open a store rooted at `root`, creating the layout if absent.
    ///
    /// Staging leftovers from *dead* writers (a crash between staging
    /// and rename) are swept on open; entries belonging to live
    /// processes are left alone, since a concurrent put may be mid-
    /// flight. Liveness comes from the pid embedded in every staging
    /// directory name.
    pub fn open(root: impl Into<PathBuf>) -> Result<RunStore, StoreError> {
        let root = root.into();
        for sub in ["runs", "tmp"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        }
        let store = RunStore { root };
        store.sweep_dead_staging();
        Ok(store)
    }

    /// Remove `tmp/` entries whose writing process is provably dead.
    /// Best-effort: failures here never fail an open.
    fn sweep_dead_staging(&self) {
        let Ok(entries) = read_dir_sorted(&self.root.join("tmp")) else {
            return;
        };
        for entry in entries {
            let pid = entry
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.split('-').nth(1))
                .and_then(|p| p.parse::<u32>().ok());
            let dead = match pid {
                Some(pid) => crate::lock::pid_alive(pid) == Some(false),
                // name not in <key>-<pid>-<n> form: not one of ours,
                // treat as garbage
                None => true,
            };
            if dead {
                let _ = fs::remove_dir_all(&entry).or_else(|_| fs::remove_file(&entry));
            }
        }
    }

    /// Acquire the store's advisory writer lock; released on drop.
    /// Errors with [`StoreError::Locked`] while another live process
    /// holds it.
    pub fn lock(&self) -> Result<StoreLock, StoreError> {
        StoreLock::acquire(&self.root)
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the event journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.jsonl")
    }

    /// Open the journal for appending.
    pub fn journal(&self) -> Result<Journal, StoreError> {
        let path = self.journal_path();
        Journal::open(&path).map_err(io_err(&path))
    }

    /// Read every journal event (empty when no journal exists).
    pub fn read_journal(&self) -> Result<Vec<JournalEvent>, StoreError> {
        let path = self.journal_path();
        crate::journal::read_events(&path).map_err(io_err(&path))
    }

    fn run_dir(&self, key: &str) -> PathBuf {
        let shard = key.get(..2).unwrap_or("xx");
        self.root.join("runs").join(shard).join(key)
    }

    /// Is a complete run stored under `key`?
    pub fn contains(&self, key: &RunKey) -> bool {
        let dir = self.run_dir(key.as_str());
        dir.join("manifest.json").is_file() && dir.join("anon.json").is_file()
    }

    /// Load the run stored under `key`, if complete.
    ///
    /// Self-healing: an entry whose files fail to parse or whose
    /// `anon.json` does not match the checksum in its manifest is
    /// moved to `quarantine/` and reported as a miss (`Ok(None)`), so
    /// the caller recomputes it. Only real I/O failures are errors.
    pub fn get(&self, key: &RunKey) -> Result<Option<StoredRun>, StoreError> {
        let dir = self.run_dir(key.as_str());
        match self.read_run(&dir)? {
            ReadOutcome::Missing => Ok(None),
            ReadOutcome::Complete(run) => Ok(Some(*run)),
            ReadOutcome::Corrupt(_, _) => {
                self.quarantine(&dir, key.as_str())?;
                Ok(None)
            }
        }
    }

    /// Read the run in `dir`, distinguishing corruption from real I/O
    /// failure. Never quarantines — callers decide.
    fn read_run(&self, dir: &Path) -> Result<ReadOutcome, StoreError> {
        let manifest_path = dir.join("manifest.json");
        let anon_path = dir.join("anon.json");
        if !manifest_path.is_file() || !anon_path.is_file() {
            return Ok(ReadOutcome::Missing);
        }
        let corrupt = |path: &Path, msg: String| Ok(ReadOutcome::Corrupt(path.to_path_buf(), msg));
        let manifest_text = fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
        let manifest: RunManifest = match serde_json::from_str(&manifest_text) {
            Ok(m) => m,
            Err(e) => return corrupt(&manifest_path, e.to_string()),
        };
        let anon_text = fs::read_to_string(&anon_path).map_err(io_err(&anon_path))?;
        if let Some(expected) = &manifest.anon_sha256 {
            let actual = sha256_hex(anon_text.as_bytes());
            if &actual != expected {
                return corrupt(
                    &anon_path,
                    format!("checksum mismatch: manifest says {expected}, file is {actual}"),
                );
            }
        }
        let anon: AnonTable = match serde_json::from_str(&anon_text) {
            Ok(a) => a,
            Err(e) => return corrupt(&anon_path, e.to_string()),
        };
        Ok(ReadOutcome::Complete(Box::new(StoredRun {
            manifest,
            anon,
        })))
    }

    /// Move the run directory `dir` into `quarantine/`, preserving it
    /// for post-mortems while freeing its key for recomputation.
    fn quarantine(&self, dir: &Path, key: &str) -> Result<PathBuf, StoreError> {
        let qdir = self.root.join("quarantine");
        fs::create_dir_all(&qdir).map_err(io_err(&qdir))?;
        let dest = qdir.join(format!(
            "{}-{}-{}",
            &key[..key.len().min(16)],
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::rename(dir, &dest).map_err(io_err(dir))?;
        if let Some(shard) = dir.parent() {
            let _ = fs::remove_dir(shard);
        }
        Ok(dest)
    }

    /// Store a completed run atomically. A run already present under
    /// the same key is left untouched (first write wins; contents are
    /// deterministic in the key, so any duplicate is identical).
    ///
    /// The stored manifest gains an `anon_sha256` checksum over the
    /// `anon.json` bytes, verified by every later [`RunStore::get`].
    /// Transient I/O failures are retried with bounded deterministic
    /// backoff; each attempt stages into a fresh directory, so a
    /// failed attempt never pollutes the next.
    pub fn put(&self, manifest: &RunManifest, anon: &AnonTable) -> Result<(), StoreError> {
        let key = RunKey(manifest.key.clone());
        if self.contains(&key) {
            return Ok(());
        }
        let anon_text = serde_json::to_string(anon)
            .map_err(|e| StoreError::Corrupt(self.root.clone(), e.to_string()))?;
        let mut manifest = manifest.clone();
        manifest.anon_sha256 = Some(sha256_hex(anon_text.as_bytes()));
        let manifest_text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| StoreError::Corrupt(self.root.clone(), e.to_string()))?;
        RetryPolicy::store_default().run(
            || self.put_once(&key, &manifest_text, &anon_text),
            StoreError::is_transient,
        )
    }

    /// One staged-write-and-rename attempt of [`RunStore::put`].
    fn put_once(
        &self,
        key: &RunKey,
        manifest_text: &str,
        anon_text: &str,
    ) -> Result<(), StoreError> {
        // fault-injection point: before any bytes touch disk, so a
        // retried attempt starts from a clean slate
        if let Some(e) = secreta_faults::fault::io("store.put") {
            return Err(StoreError::Io(self.root.join("tmp"), e));
        }
        let stage = self.root.join("tmp").join(format!(
            "{}-{}-{}",
            &key.as_str()[..key.as_str().len().min(16)],
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let staged = (|| -> Result<(), StoreError> {
            fs::create_dir_all(&stage).map_err(io_err(&stage))?;
            for (name, text) in [("manifest.json", manifest_text), ("anon.json", anon_text)] {
                let path = stage.join(name);
                fs::write(&path, text).map_err(io_err(&path))?;
            }
            Ok(())
        })();
        if let Err(e) = staged {
            let _ = fs::remove_dir_all(&stage);
            return Err(e);
        }
        let dest = self.run_dir(key.as_str());
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent).map_err(io_err(parent))?;
        }
        match fs::rename(&stage, &dest) {
            Ok(()) => Ok(()),
            Err(_) if self.contains(key) => {
                // lost a race with a concurrent writer of the same run
                let _ = fs::remove_dir_all(&stage);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_dir_all(&stage);
                Err(StoreError::Io(dest, e))
            }
        }
    }

    /// Directory of claimable job records for `sweep`.
    pub fn jobs_dir(&self, sweep: &str) -> PathBuf {
        self.root.join("jobs").join(sweep)
    }

    /// Write the claimable job records of a distributed sweep. Each
    /// record lands atomically (tmp + rename) under a name ordered by
    /// its expansion sequence, so workers list them deterministically.
    pub fn put_jobs(&self, jobs: &[JobRecord]) -> Result<(), StoreError> {
        for job in jobs {
            let dir = self.jobs_dir(&job.sweep);
            fs::create_dir_all(&dir).map_err(io_err(&dir))?;
            let text = serde_json::to_string(job)
                .map_err(|e| StoreError::Corrupt(dir.clone(), e.to_string()))?;
            let name = format!("{:08}-{}.json", job.seq, &job.key[..job.key.len().min(16)]);
            let tmp = dir.join(format!(
                ".tmp-{}-{}",
                std::process::id(),
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let path = dir.join(name);
            fs::write(&tmp, text)
                .and_then(|_| fs::rename(&tmp, &path))
                .map_err(io_err(&path))?;
        }
        Ok(())
    }

    /// Read the job records of `sweep`, in expansion (`seq`) order.
    /// Dot-prefixed staging leftovers and unparseable records are
    /// skipped — a torn record re-executes via `runs resume`, it
    /// should not wedge every worker.
    pub fn list_jobs(&self, sweep: &str) -> Result<Vec<JobRecord>, StoreError> {
        let mut jobs = Vec::new();
        for path in read_dir_sorted(&self.jobs_dir(sweep))? {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or(".");
            if name.starts_with('.') || !name.ends_with(".json") {
                continue;
            }
            let text = fs::read_to_string(&path).map_err(io_err(&path))?;
            if let Ok(job) = serde_json::from_str::<JobRecord>(&text) {
                jobs.push(job);
            }
        }
        jobs.sort_by_key(|j| j.seq);
        Ok(jobs)
    }

    /// Remove the job records (and any leases) of a completed sweep.
    pub fn clear_jobs(&self, sweep: &str) -> Result<(), StoreError> {
        for dir in [
            self.jobs_dir(sweep),
            self.root.join(crate::lease::LEASE_DIR).join(sweep),
        ] {
            if dir.exists() {
                fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
            }
            if let Some(parent) = dir.parent() {
                let _ = fs::remove_dir(parent);
            }
        }
        Ok(())
    }

    /// Store a completed run like [`RunStore::put`], but fenced by a
    /// worker lease: the staged directory carries the lease `epoch` in
    /// its name, and `fence` is re-checked immediately before the
    /// rename-commit. Returns `Ok(false)` — with the staging cleaned
    /// up and nothing committed — when the fence reports the lease
    /// lost, so a reclaimed worker's late write is rejected instead of
    /// racing the reclaimer.
    pub fn put_fenced(
        &self,
        manifest: &RunManifest,
        anon: &AnonTable,
        epoch: u64,
        fence: &dyn Fn() -> bool,
    ) -> Result<bool, StoreError> {
        let key = RunKey(manifest.key.clone());
        if self.contains(&key) {
            // someone already committed this key; contents are
            // deterministic, so the result is identical — success
            return Ok(true);
        }
        let anon_text = serde_json::to_string(anon)
            .map_err(|e| StoreError::Corrupt(self.root.clone(), e.to_string()))?;
        let mut manifest = manifest.clone();
        manifest.anon_sha256 = Some(sha256_hex(anon_text.as_bytes()));
        let manifest_text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| StoreError::Corrupt(self.root.clone(), e.to_string()))?;
        RetryPolicy::store_default().run(
            || {
                if let Some(e) = secreta_faults::fault::io("store.put") {
                    return Err(StoreError::Io(self.root.join("tmp"), e));
                }
                let stage = self.root.join("tmp").join(format!(
                    "{}-{}-{}-e{}",
                    &key.as_str()[..key.as_str().len().min(16)],
                    std::process::id(),
                    TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
                    epoch,
                ));
                let staged = (|| -> Result<(), StoreError> {
                    fs::create_dir_all(&stage).map_err(io_err(&stage))?;
                    for (name, text) in
                        [("manifest.json", &manifest_text), ("anon.json", &anon_text)]
                    {
                        let path = stage.join(name);
                        fs::write(&path, text).map_err(io_err(&path))?;
                    }
                    Ok(())
                })();
                if let Err(e) = staged {
                    let _ = fs::remove_dir_all(&stage);
                    return Err(e);
                }
                // the fence: a reclaimed lease means another worker
                // owns this job now — discard the late write
                if !fence() {
                    let _ = fs::remove_dir_all(&stage);
                    return Ok(false);
                }
                let dest = self.run_dir(key.as_str());
                if let Some(parent) = dest.parent() {
                    fs::create_dir_all(parent).map_err(io_err(parent))?;
                }
                match fs::rename(&stage, &dest) {
                    Ok(()) => Ok(true),
                    Err(_) if self.contains(&key) => {
                        let _ = fs::remove_dir_all(&stage);
                        Ok(true)
                    }
                    Err(e) => {
                        let _ = fs::remove_dir_all(&stage);
                        Err(StoreError::Io(dest, e))
                    }
                }
            },
            StoreError::is_transient,
        )
    }

    /// Manifests of every complete run, oldest first (ties broken by
    /// key, so the order is deterministic). Entries whose manifest
    /// fails to parse are skipped — `fsck` reports (and `--repair`
    /// quarantines) them; a listing should not die on one bad file.
    pub fn list(&self) -> Result<Vec<RunManifest>, StoreError> {
        let runs = self.root.join("runs");
        let mut out = Vec::new();
        for shard in read_dir_sorted(&runs)? {
            if !shard.is_dir() {
                continue;
            }
            for dir in read_dir_sorted(&shard)? {
                let manifest_path = dir.join("manifest.json");
                if !manifest_path.is_file() || !dir.join("anon.json").is_file() {
                    continue;
                }
                let text = fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
                if let Ok(manifest) = serde_json::from_str::<RunManifest>(&text) {
                    out.push(manifest);
                }
            }
        }
        out.sort_by(|a, b| {
            a.created_unix_ms
                .cmp(&b.created_unix_ms)
                .then_with(|| a.key.cmp(&b.key))
        });
        Ok(out)
    }

    /// Resolve a (possibly abbreviated) key to the unique stored run
    /// it prefixes. Errors on ambiguity; `Ok(None)` when nothing
    /// matches.
    pub fn resolve(&self, prefix: &str) -> Result<Option<RunKey>, StoreError> {
        let mut matches: Vec<String> = self
            .list()?
            .into_iter()
            .map(|m| m.key)
            .filter(|k| k.starts_with(prefix))
            .collect();
        match (matches.pop(), matches.len()) {
            (None, _) => Ok(None),
            (Some(key), 0) => Ok(Some(RunKey(key))),
            (Some(_), n) => Err(StoreError::Corrupt(
                self.root.clone(),
                format!("key prefix `{prefix}` is ambiguous ({} matches)", n + 1),
            )),
        }
    }

    /// Remove the run stored under `key`. Returns whether anything
    /// was deleted.
    pub fn remove(&self, key: &RunKey) -> Result<bool, StoreError> {
        let dir = self.run_dir(key.as_str());
        if !dir.exists() {
            return Ok(false);
        }
        fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
        // drop the shard directory too once it empties
        if let Some(shard) = dir.parent() {
            let _ = fs::remove_dir(shard);
        }
        Ok(true)
    }

    /// Remove staging leftovers and incomplete run directories (a
    /// crash between `create_dir_all` and `rename` can leave either).
    /// Returns the number of directories removed.
    pub fn gc_incomplete(&self) -> Result<usize, StoreError> {
        let mut removed = 0;
        let tmp = self.root.join("tmp");
        for entry in read_dir_sorted(&tmp)? {
            fs::remove_dir_all(&entry)
                .or_else(|_| fs::remove_file(&entry))
                .map_err(io_err(&entry))?;
            removed += 1;
        }
        let runs = self.root.join("runs");
        for shard in read_dir_sorted(&runs)? {
            if !shard.is_dir() {
                continue;
            }
            for dir in read_dir_sorted(&shard)? {
                if dir.join("manifest.json").is_file() && dir.join("anon.json").is_file() {
                    continue;
                }
                fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
                removed += 1;
            }
            let _ = fs::remove_dir(&shard);
        }
        Ok(removed)
    }

    /// Remove *everything* — every run, the staging area, quarantined
    /// entries, job records, leases, the journal, any lock file —
    /// leaving the store root empty. Returns the number of runs
    /// removed.
    pub fn gc_all(&self) -> Result<usize, StoreError> {
        let count = self.list()?.len();
        for sub in ["runs", "tmp", "quarantine", "jobs", crate::lease::LEASE_DIR] {
            let dir = self.root.join(sub);
            if dir.exists() {
                fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
            }
        }
        for file in [self.journal_path(), self.root.join(crate::lock::LOCK_FILE)] {
            if file.exists() {
                fs::remove_file(&file).map_err(io_err(&file))?;
            }
        }
        Ok(count)
    }

    /// Verify every stored run (parseability and `anon.json`
    /// checksums) plus the staging area and journal. With
    /// `repair = true`, corrupt entries are moved to `quarantine/` —
    /// freeing their keys for recomputation — and incomplete/staging
    /// leftovers are removed; without it, nothing is touched.
    pub fn fsck(&self, repair: bool) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport {
            repaired: repair,
            ..FsckReport::default()
        };
        let runs = self.root.join("runs");
        for shard in read_dir_sorted(&runs)? {
            if !shard.is_dir() {
                continue;
            }
            for dir in read_dir_sorted(&shard)? {
                let key = dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("?")
                    .to_string();
                report.scanned += 1;
                match self.read_run(&dir)? {
                    ReadOutcome::Complete(_) => report.ok += 1,
                    ReadOutcome::Missing => {
                        report.incomplete += 1;
                        if repair {
                            fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
                        }
                    }
                    ReadOutcome::Corrupt(path, reason) => {
                        report
                            .corrupt
                            .push((key.clone(), format!("{}: {reason}", path.display())));
                        if repair {
                            self.quarantine(&dir, &key)?;
                        }
                    }
                }
            }
            if repair {
                let _ = fs::remove_dir(&shard);
            }
        }
        for entry in read_dir_sorted(&self.root.join("tmp"))? {
            report.staging += 1;
            if repair {
                fs::remove_dir_all(&entry)
                    .or_else(|_| fs::remove_file(&entry))
                    .map_err(io_err(&entry))?;
            }
        }
        report.journal_error = match crate::journal::read_events(&self.journal_path()) {
            Ok(_) => None,
            Err(e) => Some(e.to_string()),
        };
        Ok(report)
    }
}

/// What [`RunStore::fsck`] found (and, with `--repair`, did).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Run directories examined.
    pub scanned: usize,
    /// Runs that parsed and passed checksum verification.
    pub ok: usize,
    /// `(key, reason)` of corrupt entries (quarantined when repairing).
    pub corrupt: Vec<(String, String)>,
    /// Incomplete run directories (removed when repairing).
    pub incomplete: usize,
    /// Staging leftovers under `tmp/` (removed when repairing).
    pub staging: usize,
    /// Set when the journal itself fails to read; mid-file journal
    /// corruption is reported but never auto-repaired.
    pub journal_error: Option<String>,
    /// Whether this report was produced by a repairing pass.
    pub repaired: bool,
}

impl FsckReport {
    /// Whether the store is fully healthy (nothing corrupt, nothing
    /// left over, journal readable).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
            && self.incomplete == 0
            && self.staging == 0
            && self.journal_error.is_none()
    }
}

/// Directory entries sorted by name; a missing directory reads as
/// empty.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::Io(dir.to_path_buf(), e)),
    };
    let mut entries = Vec::new();
    for entry in rd {
        entries.push(entry.map_err(io_err(dir))?.path());
    }
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::STORE_SCHEMA_VERSION;
    use secreta_metrics::Indicators;
    use serde::Value;
    use std::time::Duration;

    fn tmp_store(name: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("secreta-store-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn manifest(key: &str, created: u64) -> RunManifest {
        RunManifest {
            key: key.to_owned(),
            schema_version: STORE_SCHEMA_VERSION,
            context: "ctx".to_owned(),
            label: "CLUSTER".to_owned(),
            config: Value::Obj(vec![("k".to_owned(), Value::U64(5))]),
            seed: 1,
            sweep_param: None,
            sweep_value: None,
            created_unix_ms: created,
            indicators: Indicators {
                gcp: 0.5,
                tx_gcp: 0.25,
                ul: 0.0,
                are: 0.0,
                item_freq_error: 0.0,
                discernibility: 8,
                avg_class_size: 2.0,
                runtime_ms: 1.5,
                verified: true,
                risk: None,
            },
            phases: secreta_metrics::PhaseTimes {
                phases: vec![("anonymize".to_owned(), Duration::from_millis(1))],
            },
            profile: None,
            anon_sha256: None,
        }
    }

    fn empty_anon() -> AnonTable {
        AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 0,
        }
    }

    fn key64(seed: u8) -> String {
        let c = char::from_digit((seed % 16) as u32, 16).unwrap();
        std::iter::repeat_n(c, 64).collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = tmp_store("putget");
        let key = key64(0xa);
        let m = manifest(&key, 10);
        let anon = empty_anon();
        store.put(&m, &anon).unwrap();
        assert!(store.contains(&RunKey(key.clone())));
        let back = store.get(&RunKey(key)).unwrap().unwrap();
        // put fills in the checksum; every other field round-trips
        assert!(back.manifest.anon_sha256.is_some());
        assert_eq!(
            RunManifest {
                anon_sha256: None,
                ..back.manifest
            },
            m
        );
        assert_eq!(back.anon, anon);
        // tmp staging is clean after a successful put
        assert!(read_dir_sorted(&store.root().join("tmp"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn get_missing_is_none() {
        let store = tmp_store("missing");
        assert!(store.get(&RunKey(key64(1))).unwrap().is_none());
        assert!(!store.contains(&RunKey(key64(1))));
    }

    #[test]
    fn list_sorts_by_creation() {
        let store = tmp_store("list");
        store.put(&manifest(&key64(2), 20), &empty_anon()).unwrap();
        store.put(&manifest(&key64(3), 10), &empty_anon()).unwrap();
        let all = store.list().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].created_unix_ms, 10);
        assert_eq!(all[1].created_unix_ms, 20);
    }

    #[test]
    fn resolve_prefix() {
        let store = tmp_store("resolve");
        store.put(&manifest(&key64(4), 1), &empty_anon()).unwrap();
        store.put(&manifest(&key64(5), 2), &empty_anon()).unwrap();
        assert_eq!(store.resolve("44").unwrap(), Some(RunKey(key64(4))));
        assert_eq!(store.resolve("ff").unwrap(), None);
        // "" prefixes both keys
        assert!(store.resolve("").is_err());
    }

    #[test]
    fn remove_and_gc_all_leave_store_empty() {
        let store = tmp_store("gc");
        store.put(&manifest(&key64(6), 1), &empty_anon()).unwrap();
        store.put(&manifest(&key64(7), 2), &empty_anon()).unwrap();
        store
            .journal()
            .unwrap()
            .append(&JournalEvent::SweepFinished {
                sweep: "s".into(),
                hits: 0,
                misses: 0,
                failures: 0,
            })
            .unwrap();
        assert!(store.remove(&RunKey(key64(6))).unwrap());
        assert!(!store.remove(&RunKey(key64(6))).unwrap());
        assert_eq!(store.list().unwrap().len(), 1);
        assert_eq!(store.gc_all().unwrap(), 1);
        let leftovers: Vec<PathBuf> = fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            leftovers.is_empty(),
            "store not empty after gc: {leftovers:?}"
        );
    }

    #[test]
    fn gc_incomplete_removes_partial_runs() {
        let store = tmp_store("gcpartial");
        store.put(&manifest(&key64(8), 1), &empty_anon()).unwrap();
        // a run dir missing anon.json, as left by a crash
        let partial = store.root().join("runs").join("99").join(key64(9));
        fs::create_dir_all(&partial).unwrap();
        fs::write(partial.join("manifest.json"), "{}").unwrap();
        // staging leftovers
        fs::create_dir_all(store.root().join("tmp").join("stale")).unwrap();
        assert_eq!(store.gc_incomplete().unwrap(), 2);
        assert!(!partial.exists());
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn corrupt_manifest_is_quarantined_as_a_miss() {
        let store = tmp_store("corrupt");
        let key = key64(0xb);
        store.put(&manifest(&key, 1), &empty_anon()).unwrap();
        let path = store
            .root()
            .join("runs")
            .join("bb")
            .join(&key)
            .join("manifest.json");
        fs::write(&path, "{ not json").unwrap();
        // a corrupt entry reads as a miss, not an error...
        assert!(store.get(&RunKey(key.clone())).unwrap().is_none());
        // ...and has been moved aside, freeing the key for re-put
        assert!(!store.contains(&RunKey(key.clone())));
        assert_eq!(
            read_dir_sorted(&store.root().join("quarantine"))
                .unwrap()
                .len(),
            1
        );
        store.put(&manifest(&key, 2), &empty_anon()).unwrap();
        assert!(store.get(&RunKey(key)).unwrap().is_some());
    }

    #[test]
    fn checksum_mismatch_is_quarantined_as_a_miss() {
        let store = tmp_store("checksum");
        let key = key64(0xc);
        store.put(&manifest(&key, 1), &empty_anon()).unwrap();
        let anon_path = store
            .root()
            .join("runs")
            .join("cc")
            .join(&key)
            .join("anon.json");
        // valid JSON of the right shape, but not the recorded bytes —
        // only the checksum can catch this
        fs::write(&anon_path, r#"{"rel":[],"tx":null,"n_rows":7}"#).unwrap();
        assert!(store.get(&RunKey(key.clone())).unwrap().is_none());
        assert!(!store.contains(&RunKey(key)));
    }

    #[test]
    fn fsck_reports_and_repair_quarantines() {
        let store = tmp_store("fsck");
        let good = key64(0xd);
        let bad = key64(0xe);
        store.put(&manifest(&good, 1), &empty_anon()).unwrap();
        store.put(&manifest(&bad, 2), &empty_anon()).unwrap();
        let bad_anon = store
            .root()
            .join("runs")
            .join("ee")
            .join(&bad)
            .join("anon.json");
        fs::write(&bad_anon, "garbage").unwrap();
        // an incomplete run dir and a staging leftover
        let partial = store.root().join("runs").join("11").join(key64(1));
        fs::create_dir_all(&partial).unwrap();
        fs::write(partial.join("manifest.json"), "{}").unwrap();
        fs::create_dir_all(store.root().join("tmp").join("stale")).unwrap();

        let dry = store.fsck(false).unwrap();
        assert_eq!(dry.scanned, 3);
        assert_eq!(dry.ok, 1);
        assert_eq!(dry.corrupt.len(), 1);
        assert_eq!(dry.incomplete, 1);
        assert_eq!(dry.staging, 1);
        assert!(!dry.is_clean());
        // dry run touched nothing
        assert!(bad_anon.exists() && partial.exists());

        let fixed = store.fsck(true).unwrap();
        assert_eq!(fixed.corrupt.len(), 1);
        assert!(!bad_anon.exists() && !partial.exists());
        let again = store.fsck(false).unwrap();
        assert!(again.is_clean(), "{again:?}");
        assert_eq!(again.ok, 1);
        // the good run survived untouched
        assert!(store.get(&RunKey(good)).unwrap().is_some());
    }

    #[test]
    fn put_retries_injected_transient_faults() {
        let store = tmp_store("putretry");
        let key = key64(0xf);
        secreta_faults::install(
            secreta_faults::FaultPlan::from_spec("seed=9;io@store.put=1x1").unwrap(),
        );
        let res = store.put(&manifest(&key, 1), &empty_anon());
        secreta_faults::clear();
        res.unwrap();
        assert!(store.get(&RunKey(key)).unwrap().is_some());
        assert!(read_dir_sorted(&store.root().join("tmp"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn truncated_staged_put_recovers_on_next_open() {
        // a crash mid-put leaves a staging dir with a truncated
        // anon.json; reopening the store (same pid is "alive", so use
        // a dead-pid name as the crashed writer) must sweep it
        let store = tmp_store("truncstage");
        let stage = store
            .root()
            .join("tmp")
            .join(format!("{}-{}-0", &key64(3)[..16], u32::MAX));
        fs::create_dir_all(&stage).unwrap();
        fs::write(stage.join("manifest.json"), "{\"key\": \"tru").unwrap();
        fs::write(stage.join("anon.json"), "{\"rel\":[[1,").unwrap();
        let reopened = RunStore::open(store.root().to_path_buf()).unwrap();
        if crate::lock::pid_alive(1).is_some() {
            assert!(!stage.exists(), "dead writer's staging dir must be swept");
            assert!(read_dir_sorted(&reopened.root().join("tmp"))
                .unwrap()
                .is_empty());
        } else {
            // no /proc: the sweep cannot prove the writer dead; gc
            // still cleans it
            reopened.gc_incomplete().unwrap();
            assert!(!stage.exists());
        }
        assert_eq!(reopened.list().unwrap().len(), 0);
    }

    #[test]
    fn crash_during_gc_incomplete_is_rerunnable() {
        // gc removes entries one at a time; simulate a crash halfway
        // (some partial dirs removed, some left) and verify a second
        // gc pass — as run by the next open/resume — finishes the job
        let store = tmp_store("gccrash");
        store.put(&manifest(&key64(2), 1), &empty_anon()).unwrap();
        let partial_a = store.root().join("runs").join("33").join(key64(3));
        let partial_b = store.root().join("runs").join("44").join(key64(4));
        for p in [&partial_a, &partial_b] {
            fs::create_dir_all(p).unwrap();
            fs::write(p.join("anon.json"), "{}").unwrap();
        }
        // "crash": first dir already gone, second still there
        fs::remove_dir_all(&partial_a).unwrap();
        assert_eq!(store.gc_incomplete().unwrap(), 1);
        assert!(!partial_b.exists());
        assert_eq!(store.list().unwrap().len(), 1);
        assert!(store.fsck(false).unwrap().is_clean());
    }

    #[test]
    fn lock_roundtrip_via_store() {
        let store = tmp_store("lock");
        let guard = store.lock().unwrap();
        assert!(matches!(store.lock(), Err(StoreError::Locked(_, _))));
        drop(guard);
        assert!(store.lock().is_ok());
    }
}
