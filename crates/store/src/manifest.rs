//! The per-run manifest: everything a cached run records besides the
//! anonymized table itself.

use secreta_metrics::{Indicators, PhaseTimes};
use secreta_obsv::RunProfile;
use serde::{Deserialize, Serialize, Value};

/// Metadata and measurements of one completed run.
///
/// Stored as `manifest.json` next to the anonymized output. Replaying
/// a cache hit reconstructs the framework's `RunResult` from this plus
/// the stored table, byte-identically: every field round-trips exactly
/// through JSON (floats use shortest-roundtrip formatting, durations
/// are integer seconds/nanos, tables are integers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Content address of this run (64 hex chars); also its directory
    /// name under `runs/`.
    pub key: String,
    /// Store schema the run was written under.
    pub schema_version: u32,
    /// Digest of the session inputs the run was computed against.
    pub context: String,
    /// Human-readable method label, e.g. `RMERGE_r(CLUSTER+NCP)`.
    pub label: String,
    /// The method configuration, as canonical JSON (sorted keys).
    pub config: Value,
    /// RNG seed.
    pub seed: u64,
    /// Sweep parameter label (`k`, `m`, `δ`) when part of a sweep.
    #[serde(default)]
    pub sweep_param: Option<String>,
    /// Sweep-point value when part of a sweep.
    #[serde(default)]
    pub sweep_value: Option<f64>,
    /// Milliseconds since the Unix epoch at which the run finished.
    pub created_unix_ms: u64,
    /// The indicator set the run produced.
    pub indicators: Indicators,
    /// Per-phase wall-clock timings.
    pub phases: PhaseTimes,
    /// The observability profile (span tree, counters, peak RSS), when
    /// the run was recorded with observability enabled. Defaults to
    /// `None` so schema-1 manifests keep loading.
    #[serde(default)]
    pub profile: Option<RunProfile>,
    /// SHA-256 (hex) of the stored `anon.json` bytes, filled in by
    /// `RunStore::put` and verified on read. Defaults to `None` so
    /// pre-schema-3 manifests keep loading (they skip verification but
    /// also never serve cache hits — the schema version is part of the
    /// run key).
    #[serde(default)]
    pub anon_sha256: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    pub(crate) fn sample(key: &str) -> RunManifest {
        RunManifest {
            key: key.to_owned(),
            schema_version: crate::key::STORE_SCHEMA_VERSION,
            context: "c0ffee".to_owned(),
            label: "CLUSTER+NCP".to_owned(),
            config: Value::Obj(vec![("k".to_owned(), Value::U64(5))]),
            seed: 42,
            sweep_param: Some("k".to_owned()),
            sweep_value: Some(5.0),
            created_unix_ms: 1_700_000_000_000,
            indicators: Indicators {
                gcp: 0.125,
                tx_gcp: 1.0 / 3.0,
                ul: 0.5,
                are: 0.0625,
                item_freq_error: 0.01,
                discernibility: 1234,
                avg_class_size: 6.5,
                runtime_ms: 17.25,
                verified: true,
                risk: None,
            },
            phases: PhaseTimes {
                phases: vec![
                    ("anonymize".to_owned(), Duration::new(1, 500)),
                    ("metrics".to_owned(), Duration::from_millis(3)),
                ],
            },
            profile: Some(RunProfile {
                spans: vec![secreta_obsv::ProfileSpan {
                    name: "anonymize".to_owned(),
                    start: Duration::ZERO,
                    duration: Duration::new(1, 500),
                    children: vec![],
                }],
                counters: vec![("cluster/ncp_evals".to_owned(), 99)],
                peak_rss_bytes: 4096,
            }),
            anon_sha256: None,
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample("ab".repeat(32).as_str());
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn optional_sweep_fields_default() {
        // manifests written for single-point runs omit sweep info
        let json = r#"{
            "key": "k", "schema_version": 1, "context": "c",
            "label": "L", "config": {"k": 5}, "seed": 1,
            "created_unix_ms": 0,
            "indicators": {"gcp":0.0,"tx_gcp":0.0,"ul":0.0,"are":0.0,
                "item_freq_error":0.0,"discernibility":0,
                "avg_class_size":0.0,"runtime_ms":0.0,"verified":true},
            "phases": {"phases": []}
        }"#;
        let m: RunManifest = serde_json::from_str(json).unwrap();
        assert_eq!(m.sweep_param, None);
        assert_eq!(m.sweep_value, None);
    }

    #[test]
    fn schema_one_manifest_without_profile_still_loads() {
        // golden: the exact shape schema-1 stores wrote (no `profile`
        // field anywhere). Bumping the schema must never make these
        // unreadable — `runs list`/`runs show` keep working on old
        // stores even though such runs no longer serve cache hits.
        let json = r#"{
            "key": "deadbeef", "schema_version": 1, "context": "c",
            "label": "CLUSTER+NCP", "config": {"algo": "cluster", "k": 5},
            "seed": 42, "sweep_param": "k", "sweep_value": 5.0,
            "created_unix_ms": 1700000000000,
            "indicators": {"gcp":0.125,"tx_gcp":0.25,"ul":0.5,"are":0.0625,
                "item_freq_error":0.01,"discernibility":1234,
                "avg_class_size":6.5,"runtime_ms":17.25,"verified":true},
            "phases": {"phases": [["anonymize", {"secs": 1, "nanos": 500}]]}
        }"#;
        let m: RunManifest = serde_json::from_str(json).unwrap();
        assert_eq!(m.schema_version, 1);
        assert_eq!(m.profile, None);
        assert_eq!(m.indicators.discernibility, 1234);
        assert_eq!(m.phases.phases.len(), 1);
    }

    #[test]
    fn schema_three_manifest_without_risk_still_loads() {
        // golden: the exact shape schema-3 stores wrote (indicators
        // have no `risk` key at all — not even null). These manifests
        // must keep loading for `runs list`/`runs show`; the schema-4
        // key bump only stops them from serving cache hits.
        let json = r#"{
            "key": "deadbeef", "schema_version": 3, "context": "c",
            "label": "APRIORI+KM", "config": {"algo": "apriori", "k": 3, "m": 2},
            "seed": 7, "sweep_param": "k", "sweep_value": 3.0,
            "created_unix_ms": 1700000000000,
            "anon_sha256": "ab12",
            "indicators": {"gcp":0.125,"tx_gcp":0.25,"ul":0.5,"are":0.0625,
                "item_freq_error":0.01,"discernibility":1234,
                "avg_class_size":6.5,"runtime_ms":17.25,"verified":true},
            "phases": {"phases": [["anonymize", {"secs": 1, "nanos": 500}]]}
        }"#;
        let m: RunManifest = serde_json::from_str(json).unwrap();
        assert_eq!(m.schema_version, 3);
        assert_eq!(m.indicators.risk, None, "missing risk block reads as None");
        // and it round-trips without inventing risk data
        let back: RunManifest = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back.indicators.risk, None);
    }
}
