//! Cache-key derivation.
//!
//! A run is addressed by the SHA-256 of a *canonical* JSON document
//! covering everything that can change its output:
//!
//! * `schema` — [`STORE_SCHEMA_VERSION`], bumped whenever the stored
//!   representation or the algorithms' observable behaviour changes,
//!   so stale results can never be replayed across incompatible code;
//! * `context` — a digest of the session inputs (dataset bytes,
//!   hierarchies, workload, policies), computed by the caller;
//! * `config` — the method configuration, canonicalized (see below);
//! * `seed` — the RNG seed;
//! * `sweep` — the sweep point applied on top of the base config, when
//!   the run is part of a varying-parameter experiment.
//!
//! Canonicalization sorts every object's keys recursively, so two
//! configurations that serialize the same fields in different orders
//! (e.g. hand-written JSON vs. derive output) hash identically, while
//! any *semantic* change — a different k, algorithm, bound — produces
//! a different key.

use crate::sha::Sha256;
use serde::Value;

/// Version of the store's on-disk schema and key derivation. Part of
/// every run key: bump it to invalidate all previously cached runs.
///
/// History:
/// * 1 — initial schema.
/// * 2 — manifests gained an optional `profile` (observability span
///   tree, counters, peak RSS). Version-1 manifests still *load* — the
///   field defaults to absent — but no longer serve cache hits, so
///   re-executed runs get profiles recorded.
/// * 3 — manifests record `anon_sha256`, the checksum of the stored
///   `anon.json` bytes, verified on every read so silent corruption
///   becomes a quarantined cache miss instead of a wrong result.
///   Version-2 manifests still load but no longer serve cache hits.
/// * 4 — indicators gained the optional `risk` block (prosecutor /
///   journalist re-identification, m-item adversary, constraint
///   audit). Version-3 manifests still load — `risk` defaults to
///   absent — but no longer serve cache hits, so re-executed runs get
///   risk indicators recorded.
pub const STORE_SCHEMA_VERSION: u32 = 4;

/// Content address of a single run (64 lowercase hex chars).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub String);

impl RunKey {
    /// The key as its 64-hex-char string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Recursively sort object keys; arrays keep their order (element
/// order in JSON arrays is semantic).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(canonicalize).collect()),
        Value::Obj(entries) => {
            let mut out: Vec<(String, Value)> = entries
                .iter()
                .map(|(k, val)| (k.clone(), canonicalize(val)))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Obj(out)
        }
        other => other.clone(),
    }
}

/// Compact canonical JSON rendering (sorted keys, no whitespace).
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(&canonicalize(v)).expect("serialization to a string is infallible")
}

/// Derive the content address of one run.
///
/// `config` is hashed in canonical form, so field order never matters.
/// `sweep` is the `(parameter label, value)` pair of the sweep point
/// this run realizes, or `None` for a single-point evaluation.
pub fn run_key(
    context_digest: &str,
    config: &Value,
    seed: u64,
    sweep: Option<(&str, f64)>,
) -> RunKey {
    let mut doc = vec![
        ("config".to_owned(), canonicalize(config)),
        ("context".to_owned(), Value::Str(context_digest.to_owned())),
        ("schema".to_owned(), Value::U64(STORE_SCHEMA_VERSION as u64)),
        ("seed".to_owned(), Value::U64(seed)),
    ];
    if let Some((param, value)) = sweep {
        doc.push((
            "sweep".to_owned(),
            Value::Obj(vec![
                ("param".to_owned(), Value::Str(param.to_owned())),
                ("value".to_owned(), Value::F64(value)),
            ]),
        ));
    }
    let rendered = canonical_json(&Value::Obj(doc));
    let mut h = Sha256::new();
    h.update(rendered.as_bytes());
    RunKey(h.finalize_hex())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    #[test]
    fn key_invariant_under_field_order() {
        let a = obj(vec![
            ("k", Value::U64(5)),
            ("algo", Value::Str("cluster".into())),
            (
                "nested",
                obj(vec![("x", Value::U64(1)), ("y", Value::U64(2))]),
            ),
        ]);
        let b = obj(vec![
            (
                "nested",
                obj(vec![("y", Value::U64(2)), ("x", Value::U64(1))]),
            ),
            ("algo", Value::Str("cluster".into())),
            ("k", Value::U64(5)),
        ]);
        assert_eq!(run_key("ctx", &a, 7, None), run_key("ctx", &b, 7, None));
    }

    #[test]
    fn key_changes_with_semantics() {
        let base = obj(vec![("k", Value::U64(5))]);
        let k = run_key("ctx", &base, 7, None);
        assert_ne!(k, run_key("ctx", &obj(vec![("k", Value::U64(6))]), 7, None));
        assert_ne!(k, run_key("ctx", &base, 8, None));
        assert_ne!(k, run_key("other", &base, 7, None));
        assert_ne!(k, run_key("ctx", &base, 7, Some(("k", 5.0))));
        assert_ne!(
            run_key("ctx", &base, 7, Some(("k", 5.0))),
            run_key("ctx", &base, 7, Some(("k", 10.0))),
        );
        assert_ne!(
            run_key("ctx", &base, 7, Some(("k", 5.0))),
            run_key("ctx", &base, 7, Some(("m", 5.0))),
        );
    }

    #[test]
    fn arrays_keep_order() {
        let a = obj(vec![("qs", Value::Arr(vec![Value::U64(1), Value::U64(2)]))]);
        let b = obj(vec![("qs", Value::Arr(vec![Value::U64(2), Value::U64(1)]))]);
        assert_ne!(run_key("ctx", &a, 0, None), run_key("ctx", &b, 0, None));
    }
}
