//! Advisory store locking.
//!
//! Two orchestrators sharing one `--store-dir` must not interleave
//! journal writes: both would append `SweepStarted`/`JobFinished`
//! lines for different sweeps and each other's `runs resume` view
//! would be confused. A `store.lock` file in the store root holds the
//! owning process identity; the second writer gets a
//! [`StoreError::Locked`] naming the
//! holder instead of a corrupted journal.
//!
//! The lock is advisory — run puts themselves are rename-atomic and
//! need no lock — and crash-safe: a lock whose holder is no longer
//! alive is considered stale and silently reclaimed. Liveness is
//! judged on the *pair* (PID, process start time from
//! `/proc/<pid>/stat`), not the PID alone: PIDs are recycled, so a
//! bare-PID payload could make a dead owner look alive forever once an
//! unrelated process inherits the number. A recycled PID has a
//! different start time and is reclaimed correctly. Legacy bare-PID
//! lock files are still understood (PID-only liveness check).

use crate::store::StoreError;
use serde::Value;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub(crate) use crate::procinfo::{owner_dead, pid_alive, self_start_time};

/// Name of the lock file inside a store root.
pub const LOCK_FILE: &str = "store.lock";

/// Parse a lock payload: either the current JSON form
/// `{"pid":N,"start":S}` or a legacy bare-PID string. Returns
/// `(pid, start)` where a missing start means a legacy payload.
pub(crate) fn parse_owner(text: &str) -> Option<(u32, Option<u64>)> {
    let text = text.trim();
    if let Ok(pid) = text.parse::<u32>() {
        return Some((pid, None));
    }
    let value = serde_json::from_str::<Value>(text).ok()?;
    let fields = match &value {
        Value::Obj(fields) => fields,
        _ => return None,
    };
    let field_u64 = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Value::U64(n) => Some(*n),
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            })
    };
    let pid = u32::try_from(field_u64("pid")?).ok()?;
    Some((pid, field_u64("start")))
}

/// Render the lock payload for the current process.
pub(crate) fn owner_payload() -> String {
    match self_start_time() {
        Some(start) => format!("{{\"pid\":{},\"start\":{}}}", std::process::id(), start),
        None => format!("{{\"pid\":{}}}", std::process::id()),
    }
}

/// Held advisory lock on a store; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquire the lock under `root`, erroring with
    /// [`StoreError::Locked`] when another
    /// live process holds it. A stale lock (dead holder, including a
    /// recycled PID whose start time no longer matches) is reclaimed.
    pub fn acquire(root: &Path) -> Result<StoreLock, StoreError> {
        let path = root.join(LOCK_FILE);
        // Two tries: the second only after removing a stale lock.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use io::Write;
                    f.write_all(owner_payload().as_bytes())
                        .and_then(|_| f.flush())
                        .map_err(|e| StoreError::Io(path.clone(), e))?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path).ok().and_then(|s| parse_owner(&s));
                    match holder {
                        Some((pid, start)) if owner_dead(pid, start) => {
                            // stale: holder died without releasing (or
                            // its PID was recycled by another process)
                            let _ = fs::remove_file(&path);
                            continue;
                        }
                        Some((pid, _)) => return Err(StoreError::Locked(path, pid)),
                        // unreadable/empty lock file: treat as held by
                        // an unknown process rather than clobbering it
                        None => return Err(StoreError::Locked(path, 0)),
                    }
                }
                Err(e) => return Err(StoreError::Io(path, e)),
            }
        }
        Err(StoreError::Locked(path, 0))
    }

    /// Path of the lock file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secreta-lock-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let root = tmp_root("cycle");
        let lock = StoreLock::acquire(&root).unwrap();
        assert!(lock.path().is_file());
        drop(lock);
        assert!(!root.join(LOCK_FILE).exists());
        let _again = StoreLock::acquire(&root).unwrap();
    }

    #[test]
    fn second_acquire_reports_live_holder() {
        let root = tmp_root("held");
        let _held = StoreLock::acquire(&root).unwrap();
        // our own pid is alive, so the second acquire must refuse
        match StoreLock::acquire(&root) {
            Err(StoreError::Locked(_, pid)) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        if pid_alive(1).is_none() {
            return; // no /proc: staleness is undecidable on this platform
        }
        let root = tmp_root("stale");
        // fabricate a lock held by a pid that cannot be running
        fs::write(root.join(LOCK_FILE), u32::MAX.to_string()).unwrap();
        let lock = StoreLock::acquire(&root).unwrap();
        assert!(lock.path().is_file());
    }

    #[test]
    fn payload_round_trips_and_accepts_legacy() {
        let (pid, start) = parse_owner(&owner_payload()).unwrap();
        assert_eq!(pid, std::process::id());
        if self_start_time().is_some() {
            assert_eq!(start, self_start_time());
        }
        // legacy bare-PID payloads still parse (without a start time)
        assert_eq!(parse_owner("4242\n"), Some((4242, None)));
        assert_eq!(parse_owner("not a lock"), None);
    }

    #[test]
    fn forged_lock_with_recycled_pid_is_reclaimed() {
        if self_start_time().is_none() {
            return; // no /proc: the PID-reuse defence needs start times
        }
        let root = tmp_root("forged");
        // Forge a lock naming a PID that IS alive (our own) but with a
        // start time that cannot match — exactly what a recycled PID
        // looks like after the real owner died. A bare-PID check would
        // deadlock here forever; the start-time comparison reclaims it.
        fs::write(
            root.join(LOCK_FILE),
            format!("{{\"pid\":{},\"start\":{}}}", std::process::id(), u64::MAX),
        )
        .unwrap();
        let lock = StoreLock::acquire(&root).unwrap();
        assert!(lock.path().is_file());
        // ...while a forged lock with our *correct* identity is held.
        drop(lock);
        fs::write(root.join(LOCK_FILE), owner_payload()).unwrap();
        assert!(matches!(
            StoreLock::acquire(&root),
            Err(StoreError::Locked(_, _))
        ));
    }
}
