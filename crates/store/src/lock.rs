//! Advisory store locking.
//!
//! Two orchestrators sharing one `--store-dir` must not interleave
//! journal writes: both would append `SweepStarted`/`JobFinished`
//! lines for different sweeps and each other's `runs resume` view
//! would be confused. A `store.lock` file in the store root holds the
//! owning process id; the second writer gets a
//! [`StoreError::Locked`] naming the
//! holder instead of a corrupted journal.
//!
//! The lock is advisory — run puts themselves are rename-atomic and
//! need no lock — and crash-safe: a lock whose holder is no longer
//! alive (checked via `/proc` where available) is considered stale and
//! silently reclaimed.

use crate::store::StoreError;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the lock file inside a store root.
pub const LOCK_FILE: &str = "store.lock";

/// Liveness of a process id: `Some(alive)` when the platform exposes
/// `/proc`, `None` when it cannot be determined (lock then treated as
/// live — never steal what might be held).
pub(crate) fn pid_alive(pid: u32) -> Option<bool> {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return None;
    }
    Some(proc_root.join(pid.to_string()).exists())
}

/// Held advisory lock on a store; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquire the lock under `root`, erroring with
    /// [`StoreError::Locked`] when another
    /// live process holds it. A stale lock (dead holder) is reclaimed.
    pub fn acquire(root: &Path) -> Result<StoreLock, StoreError> {
        let path = root.join(LOCK_FILE);
        // Two tries: the second only after removing a stale lock.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use io::Write;
                    let pid = std::process::id();
                    f.write_all(pid.to_string().as_bytes())
                        .and_then(|_| f.flush())
                        .map_err(|e| StoreError::Io(path.clone(), e))?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) == Some(false) => {
                            // stale: holder died without releasing
                            let _ = fs::remove_file(&path);
                            continue;
                        }
                        Some(pid) => return Err(StoreError::Locked(path, pid)),
                        // unreadable/empty lock file: treat as held by
                        // an unknown process rather than clobbering it
                        None => return Err(StoreError::Locked(path, 0)),
                    }
                }
                Err(e) => return Err(StoreError::Io(path, e)),
            }
        }
        Err(StoreError::Locked(path, 0))
    }

    /// Path of the lock file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secreta-lock-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let root = tmp_root("cycle");
        let lock = StoreLock::acquire(&root).unwrap();
        assert!(lock.path().is_file());
        drop(lock);
        assert!(!root.join(LOCK_FILE).exists());
        let _again = StoreLock::acquire(&root).unwrap();
    }

    #[test]
    fn second_acquire_reports_live_holder() {
        let root = tmp_root("held");
        let _held = StoreLock::acquire(&root).unwrap();
        // our own pid is alive, so the second acquire must refuse
        match StoreLock::acquire(&root) {
            Err(StoreError::Locked(_, pid)) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        if pid_alive(1).is_none() {
            return; // no /proc: staleness is undecidable on this platform
        }
        let root = tmp_root("stale");
        // fabricate a lock held by a pid that cannot be running
        fs::write(root.join(LOCK_FILE), u32::MAX.to_string()).unwrap();
        let lock = StoreLock::acquire(&root).unwrap();
        assert!(lock.path().is_file());
    }
}
