//! Bounded retry with deterministic backoff for transient store I/O.
//!
//! A store operation can fail transiently (interrupted syscalls,
//! overloaded filesystems, injected faults in chaos tests) without the
//! store being broken. [`RetryPolicy::run`] retries such failures a
//! bounded number of times with an exponential backoff whose jitter is
//! derived from a fixed seed — the same failure sequence always
//! produces the same sleep schedule, keeping chaos-test runs
//! reproducible.

use std::io;
use std::time::Duration;

/// A bounded retry schedule: up to `attempts` tries, sleeping
/// `base * 2^i` plus deterministic jitter between consecutive tries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    attempts: u32,
    base: Duration,
    seed: u64,
}

impl RetryPolicy {
    /// A custom policy.
    pub fn new(attempts: u32, base: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            base,
            seed,
        }
    }

    /// The store's default: three attempts, starting at 2 ms — enough
    /// to absorb a transient hiccup without stalling a sweep when the
    /// disk is genuinely gone.
    pub fn store_default() -> RetryPolicy {
        RetryPolicy::new(3, Duration::from_millis(2), 0x5ec2e7a)
    }

    /// Backoff before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let jitter_ms = if base_ms == 0 {
            0
        } else {
            // splitmix-style mix of (seed, attempt): deterministic,
            // but decorrelated across attempts
            let mut z = self
                .seed
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % base_ms
        };
        Duration::from_millis(base_ms.saturating_mul(1 << attempt.min(16)) + jitter_ms)
    }

    /// Run `op`, retrying failures that `transient` classifies as
    /// retryable. The final error (transient or not) is returned once
    /// the attempt budget is spent.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        transient: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < self.attempts && transient(&e) => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether an I/O error is worth retrying: the kinds the OS reports
/// for interrupted or momentarily-unavailable operations (and the kind
/// `secreta-faults` injects for its transient faults).
pub fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interrupted() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "try again")
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::new(3, Duration::ZERO, 1);
        let mut calls = 0;
        let out = policy.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(interrupted())
                } else {
                    Ok(calls)
                }
            },
            transient_io,
        );
        assert_eq!(out.unwrap(), 3);
    }

    #[test]
    fn gives_up_after_attempt_budget() {
        let policy = RetryPolicy::new(3, Duration::ZERO, 1);
        let mut calls = 0;
        let out: Result<(), _> = policy.run(
            || {
                calls += 1;
                Err(interrupted())
            },
            transient_io,
        );
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let policy = RetryPolicy::new(5, Duration::ZERO, 1);
        let mut calls = 0;
        let out: Result<(), _> = policy.run(
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
            },
            transient_io,
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let policy = RetryPolicy::new(4, Duration::from_millis(2), 7);
        let a: Vec<Duration> = (0..3).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (0..3).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b);
        assert!(a[0] < a[2], "exponential component dominates: {a:?}");
    }
}
