//! Interleaving tests for concurrent same-job lease claims.
//!
//! Two (or many) claimers race for one job: exactly one lease must
//! win each round, losers must back off on a deterministic schedule,
//! and the committed result must be byte-identical no matter which
//! claimer wins — the distributed sweep's core safety argument,
//! exercised here directly against the lease + fenced-put primitives.

use secreta_store::lease::{backoff_ms, ClaimOutcome, LeaseSet};
use secreta_store::{RunKey, RunStore};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

fn tmp_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "secreta-lease-race-{}-{}",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn key64(c: char) -> String {
    std::iter::repeat_n(c, 64).collect()
}

fn manifest(key: &str) -> secreta_store::RunManifest {
    secreta_store::RunManifest {
        key: key.to_owned(),
        schema_version: secreta_store::STORE_SCHEMA_VERSION,
        context: "ctx".to_owned(),
        label: "CLUSTER".to_owned(),
        config: serde::Value::Obj(vec![("k".to_owned(), serde::Value::U64(5))]),
        seed: 1,
        sweep_param: None,
        sweep_value: None,
        created_unix_ms: 0,
        indicators: secreta_metrics::Indicators {
            gcp: 0.5,
            tx_gcp: 0.25,
            ul: 0.0,
            are: 0.0,
            item_freq_error: 0.0,
            discernibility: 8,
            avg_class_size: 2.0,
            runtime_ms: 1.5,
            verified: true,
            risk: None,
        },
        phases: secreta_metrics::PhaseTimes { phases: vec![] },
        profile: None,
        anon_sha256: None,
    }
}

fn empty_anon() -> secreta_metrics::AnonTable {
    secreta_metrics::AnonTable {
        rel: vec![],
        tx: None,
        n_rows: 0,
    }
}

/// Many threads race to claim one job simultaneously; exactly one
/// wins, every loser observes the winner's token, and each loser's
/// backoff schedule is deterministic in its own token.
#[test]
fn exactly_one_of_many_simultaneous_claims_wins() {
    let root = tmp_root("many");
    const N: usize = 8;
    let sets: Vec<LeaseSet> = (0..N)
        .map(|_| LeaseSet::open(&root, "s1", 60_000).unwrap())
        .collect();
    for round in 0..16 {
        let key = format!("job-{round}");
        let wins = AtomicUsize::new(0);
        let barrier = Barrier::new(N);
        std::thread::scope(|s| {
            for set in &sets {
                let wins = &wins;
                let barrier = &barrier;
                let key = &key;
                s.spawn(move || {
                    barrier.wait();
                    let outcome = set.claim(key).unwrap();
                    // hold any won lease until every thread has tried,
                    // so late claimers race the *held* lease
                    barrier.wait();
                    match outcome {
                        ClaimOutcome::Claimed(guard) => {
                            wins.fetch_add(1, Ordering::SeqCst);
                            assert!(guard.verify());
                            guard.release();
                        }
                        ClaimOutcome::Held(rec) => {
                            // the loser sees a live lease and backs off
                            // on its own deterministic schedule
                            assert!(!rec.token.is_empty());
                            let schedule: Vec<u64> =
                                (0..4).map(|a| backoff_ms(a, set.token())).collect();
                            assert_eq!(
                                schedule,
                                (0..4)
                                    .map(|a| backoff_ms(a, set.token()))
                                    .collect::<Vec<_>>()
                            );
                        }
                        ClaimOutcome::Reclaimed(_, old) => {
                            panic!("fresh job must never be reclaimed (old: {old:?})")
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::SeqCst),
            1,
            "round {round}: exactly one claim must win"
        );
    }
}

/// Two workers race claim→execute→publish for the same job; whoever
/// wins, the committed bytes are identical, and the loser's fenced put
/// either never runs or commits the very same content.
#[test]
fn stored_result_is_byte_identical_regardless_of_winner() {
    for round in 0..8 {
        let root = tmp_root(&format!("winner-{round}"));
        let store = RunStore::open(root.clone()).unwrap();
        let a = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let b = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let key = key64('a');
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for set in [&a, &b] {
                let store = &store;
                let key = &key;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    match set.claim(key).unwrap() {
                        ClaimOutcome::Claimed(guard) => {
                            let committed = store
                                .put_fenced(&manifest(key), &empty_anon(), guard.epoch(), &|| {
                                    guard.verify()
                                })
                                .unwrap();
                            assert!(committed, "winner's fence must hold");
                            guard.release();
                        }
                        ClaimOutcome::Held(_) => {
                            // deterministic backoff, then the loser
                            // finds the result already stored
                            std::thread::sleep(std::time::Duration::from_millis(
                                backoff_ms(0, set.token()).min(50),
                            ));
                        }
                        ClaimOutcome::Reclaimed(..) => panic!("nothing to reclaim"),
                    }
                });
            }
        });
        // winner committed; bytes are the canonical serialization
        let run = store.get(&RunKey(key.clone())).unwrap().expect("stored");
        let anon_path = root
            .join("runs")
            .join(&key[..2])
            .join(&key)
            .join("anon.json");
        let bytes = std::fs::read(&anon_path).unwrap();
        assert_eq!(bytes, serde_json::to_string(&run.anon).unwrap().as_bytes());
        // staging is clean: no half-committed leftovers either way
        assert_eq!(
            std::fs::read_dir(root.join("tmp")).unwrap().count(),
            0,
            "round {round}"
        );
    }
}

/// A reclaimed (fenced-off) worker's late publish is rejected: the
/// job's result is committed exactly once, by the reclaimer.
#[test]
fn fenced_off_late_write_is_rejected() {
    let root = tmp_root("fence");
    let store = RunStore::open(root.clone()).unwrap();
    let slow = LeaseSet::open(&root, "s1", 50).unwrap(); // 50 ms TTL
    let fast = LeaseSet::open(&root, "s1", 50).unwrap();
    let key = key64('b');
    let slow_guard = match slow.claim(&key).unwrap() {
        ClaimOutcome::Claimed(g) => g,
        other => panic!("{other:?}"),
    };
    // the slow worker stalls past its TTL without heartbeating...
    std::thread::sleep(std::time::Duration::from_millis(80));
    let fast_guard = match fast.claim(&key).unwrap() {
        ClaimOutcome::Reclaimed(g, old) => {
            assert_eq!(old.token, slow.token());
            g
        }
        other => panic!("expected reclaim, got {other:?}"),
    };
    // ...then wakes up and tries to publish: the fence rejects it
    let late = store
        .put_fenced(&manifest(&key), &empty_anon(), slow_guard.epoch(), &|| {
            slow_guard.verify()
        })
        .unwrap();
    assert!(!late, "late write must be fenced off");
    assert!(store.get(&RunKey(key.clone())).unwrap().is_none());
    // the reclaimer publishes normally
    let ok = store
        .put_fenced(&manifest(&key), &empty_anon(), fast_guard.epoch(), &|| {
            fast_guard.verify()
        })
        .unwrap();
    assert!(ok);
    assert!(store.get(&RunKey(key)).unwrap().is_some());
}
