//! Property tests of the store's serialization and key derivation.

use proptest::prelude::*;
use secreta_metrics::{Indicators, PhaseTimes};
use secreta_obsv::{ProfileSpan, RunProfile};
use secreta_store::{canonicalize, run_key, RunManifest, STORE_SCHEMA_VERSION};
use serde::Value;
use std::time::Duration;

/// A strategy over finite floats with awkward fractional parts. JSON
/// round-trips every finite f64 exactly (shortest-roundtrip
/// formatting), so any finite value must survive.
fn finite_f64() -> impl Strategy<Value = f64> {
    (any::<u32>(), 1u32..997).prop_map(|(n, d)| n as f64 / d as f64 - 1.0e6)
}

fn indicators_strategy() -> impl Strategy<Value = Indicators> {
    (
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
        (finite_f64(), 0u64..u64::MAX / 2, finite_f64()),
        (finite_f64(), any::<bool>()),
    )
        .prop_map(
            |((gcp, tx_gcp, ul, are), (item_freq_error, discernibility, avg), (rt, verified))| {
                Indicators {
                    gcp,
                    tx_gcp,
                    ul,
                    are,
                    item_freq_error,
                    discernibility,
                    avg_class_size: avg,
                    runtime_ms: rt,
                    verified,
                    risk: None,
                }
            },
        )
}

fn phases_strategy() -> impl Strategy<Value = PhaseTimes> {
    prop::collection::vec((0usize..6, 0u64..10_000, 0u32..1_000_000_000), 0..5).prop_map(|v| {
        PhaseTimes {
            phases: v
                .into_iter()
                .map(|(name, secs, nanos)| (format!("phase{name}"), Duration::new(secs, nanos)))
                .collect(),
        }
    })
}

fn profile_strategy() -> impl Strategy<Value = Option<RunProfile>> {
    let span = (0usize..6, 0u64..10_000_000, 0u64..10_000_000, 0usize..3).prop_map(
        |(name, start_us, dur_us, n_children)| ProfileSpan {
            name: format!("span{name}"),
            start: Duration::from_micros(start_us),
            duration: Duration::from_micros(dur_us),
            children: (0..n_children)
                .map(|c| ProfileSpan {
                    name: format!("child{c}"),
                    start: Duration::from_micros(start_us),
                    duration: Duration::from_micros(dur_us / 2),
                    children: vec![],
                })
                .collect(),
        },
    );
    (
        any::<bool>(),
        prop::collection::vec(span, 0..4),
        prop::collection::vec((0usize..6, 0u64..u64::MAX / 2), 0..4),
        0u64..u64::MAX / 2,
    )
        .prop_map(|(some, spans, counters, peak)| {
            some.then(|| RunProfile {
                spans,
                counters: counters
                    .into_iter()
                    .map(|(n, v)| (format!("c{n}"), v))
                    .collect(),
                peak_rss_bytes: peak,
            })
        })
}

fn manifest_strategy() -> impl Strategy<Value = RunManifest> {
    (
        ("[a-f0-9]{64}", "[A-Za-z0-9_+()]{1,24}", 0u64..u64::MAX / 2),
        (0usize..4, finite_f64()), // sweep: index 3 = "no sweep"
        (0u64..u64::MAX / 2, indicators_strategy(), phases_strategy()),
        prop::collection::vec((0usize..8, 0u64..1000), 0..6),
        profile_strategy(),
    )
        .prop_map(
            |(
                (key, label, seed),
                (sweep_idx, sweep_val),
                (created, indicators, phases),
                config_fields,
                profile,
            )| {
                let params = ["k", "m", "δ"];
                let config = Value::Obj(
                    config_fields
                        .into_iter()
                        .map(|(name, v)| (format!("f{name}"), Value::U64(v)))
                        .collect(),
                );
                let sweep = params.get(sweep_idx).map(|p| (p.to_string(), sweep_val));
                RunManifest {
                    key,
                    schema_version: STORE_SCHEMA_VERSION,
                    context: "ctx".to_owned(),
                    label,
                    config,
                    seed,
                    sweep_param: sweep.as_ref().map(|(p, _)| p.clone()),
                    sweep_value: sweep.map(|(_, v)| v),
                    created_unix_ms: created,
                    indicators,
                    phases,
                    profile,
                    anon_sha256: None,
                }
            },
        )
}

/// Shuffle an object's fields (and, recursively, nested objects) by
/// rotating them, producing a semantically identical value.
fn rotate_fields(v: &Value, by: usize) -> Value {
    match v {
        Value::Obj(entries) if !entries.is_empty() => {
            let mut rotated: Vec<(String, Value)> = entries
                .iter()
                .map(|(k, val)| (k.clone(), rotate_fields(val, by)))
                .collect();
            rotated.rotate_left(by % entries.len());
            Value::Obj(rotated)
        }
        Value::Arr(items) => Value::Arr(items.iter().map(|x| rotate_fields(x, by)).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manifest_serialization_round_trips(m in manifest_strategy()) {
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&m, &back);
        // and a second trip is byte-stable
        let json2 = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(json, json2);
    }

    #[test]
    fn run_key_invariant_under_field_reordering(
        fields in prop::collection::vec(("[a-z]{1,6}", 0u64..1000), 1..8),
        seed in 0u64..1000,
        rot in 1usize..7,
    ) {
        let mut entries: Vec<(String, Value)> = fields
            .into_iter()
            .map(|(k, v)| (k, Value::U64(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        let config = Value::Obj(entries);
        let shuffled = rotate_fields(&config, rot);
        prop_assert_eq!(
            run_key("ctx", &config, seed, None),
            run_key("ctx", &shuffled, seed, None)
        );
        prop_assert_eq!(canonicalize(&config), canonicalize(&shuffled));
    }

    #[test]
    fn run_key_sensitive_to_semantic_changes(
        base in prop::collection::vec(("[a-z]{1,6}", 0u64..1000), 1..6),
        seed in 0u64..1000,
        bump in 1u64..100,
    ) {
        let mut entries: Vec<(String, Value)> = base
            .into_iter()
            .map(|(k, v)| (k, Value::U64(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        let config = Value::Obj(entries.clone());
        let key = run_key("ctx", &config, seed, None);

        // changing any one field value changes the key
        for i in 0..entries.len() {
            let mut changed = entries.clone();
            if let Value::U64(v) = changed[i].1 {
                changed[i].1 = Value::U64(v + bump);
            }
            prop_assert_ne!(&key, &run_key("ctx", &Value::Obj(changed), seed, None));
        }
        // changing the seed or the context changes the key
        prop_assert_ne!(&key, &run_key("ctx", &config, seed + bump, None));
        prop_assert_ne!(&key, &run_key("ctx2", &config, seed, None));
    }
}
