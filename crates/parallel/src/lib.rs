//! Deterministic data-parallel primitives for the anonymization hot
//! paths.
//!
//! Every helper here carries a hard determinism contract: **the result
//! is byte-identical to the sequential left-to-right computation, for
//! every thread count.** That is achieved by splitting the index space
//! into contiguous chunks, computing per-chunk partial results with
//! the same operators the sequential code uses, and reducing the
//! partials in chunk order. [`par_argmin`] keeps the *first* index
//! attaining the minimum (matching `Iterator::min_by` semantics), and
//! [`par_map`] reassembles outputs in index order so any downstream
//! fold sees the sequential ordering.
//!
//! Thread count resolution: [`set_threads`] override (tests, CLI
//! `--threads`), else the `SECRETA_THREADS` environment variable, else
//! `std::thread::available_parallelism()`. Small inputs fall back to
//! the sequential path to avoid spawn overhead.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs smaller than this run sequentially: thread spawn overhead
/// dwarfs the work.
const MIN_PARALLEL: usize = 512;

/// 0 = no override (resolve from env / hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the thread count used by all helpers in this module.
///
/// `0` clears the override. Intended for tests (pinning both sides of
/// a determinism comparison) and the CLI's `--threads` flag.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The thread count the helpers will use for large inputs.
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SECRETA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn effective_threads(n_items: usize) -> usize {
    if n_items < MIN_PARALLEL {
        return 1;
    }
    max_threads().min(n_items).max(1)
}

/// Contiguous chunk bounds for worker `t` of `threads` over `0..n`.
fn chunk_bounds(n: usize, threads: usize, t: usize) -> (usize, usize) {
    let chunk = n.div_ceil(threads);
    let lo = (t * chunk).min(n);
    let hi = ((t + 1) * chunk).min(n);
    (lo, hi)
}

/// Index (in `0..n`) of the minimal cost, plus that cost.
///
/// Ties resolve to the smallest index, exactly like a sequential
/// `min_by` scan keeping the first minimum. `NaN` costs lose every
/// comparison (they are never selected unless all costs are `NaN`, in
/// which case index 0 wins).
pub fn par_argmin<F>(n: usize, cost: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    if n == 0 {
        return None;
    }
    let threads = effective_threads(n);
    if threads <= 1 {
        return Some(seq_argmin(0, n, &cost));
    }
    let mut partials: Vec<(usize, f64)> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cost = &cost;
                let (lo, hi) = chunk_bounds(n, threads, t);
                s.spawn(move || seq_argmin(lo, hi, cost))
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("argmin worker panicked"));
        }
    });
    // reduce in chunk order with strict `<`: the earliest chunk
    // holding the global minimum wins, and within a chunk the scan
    // already kept the earliest index
    let mut best = partials[0];
    for &(idx, c) in &partials[1..] {
        if c < best.1 || (best.1.is_nan() && !c.is_nan()) {
            best = (idx, c);
        }
    }
    Some(best)
}

fn seq_argmin<F: Fn(usize) -> f64>(lo: usize, hi: usize, cost: &F) -> (usize, f64) {
    debug_assert!(lo < hi);
    let mut best_idx = lo;
    let mut best_cost = cost(lo);
    for i in lo + 1..hi {
        let c = cost(i);
        // NaN loses every comparison: a finite cost also displaces a
        // NaN incumbent (plain `<` would let a leading NaN stick)
        if c < best_cost || (best_cost.is_nan() && !c.is_nan()) {
            best_cost = c;
            best_idx = i;
        }
    }
    (best_idx, best_cost)
}

/// `(0..n).map(f).collect()`, computed on multiple threads with the
/// output in index order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let (lo, hi) = chunk_bounds(n, threads, t);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Split `0..n` into contiguous chunks of at least `min_chunk` items,
/// run `f(lo, hi)` on each chunk concurrently, and return the partial
/// results **in chunk order**.
///
/// This is the primitive behind deterministic sharded counting: each
/// worker builds a partial accumulator over its contiguous row range
/// with the same operators the sequential code would use, and the
/// caller reduces the partials left-to-right. Because chunk boundaries
/// depend only on `n`, `min_chunk` and the resolved thread count — and
/// the reduce order is fixed — a caller whose reduce operator is
/// associative over row order (e.g. per-key `+=`) gets results
/// identical to the sequential pass for every thread count.
pub fn par_chunks<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let by_size = if min_chunk == 0 {
        n
    } else {
        n / min_chunk.max(1)
    };
    let threads = max_threads().min(by_size.max(1)).max(1);
    if threads <= 1 {
        return vec![f(0, n)];
    }
    let mut parts: Vec<T> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let (lo, hi) = chunk_bounds(n, threads, t);
                s.spawn(move || f(lo, hi))
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("chunk worker panicked"));
        }
    });
    parts
}

/// Bucketed count of `0..n`: `out[b]` is the number of items `i` with
/// `bucket_of(i) == b`, for `b < buckets` (out-of-range buckets are
/// ignored).
///
/// Built on [`par_chunks`]: each worker fills a private histogram over
/// its contiguous item range, and the partials are summed in chunk
/// order. Histogram addition is associative over row order, so the
/// result is identical to the sequential scan at every thread count —
/// the integer backbone the metrics layer uses to vectorize float
/// accumulations (count per code first, one deterministic weighted sum
/// after).
pub fn par_hist<F>(n: usize, buckets: usize, bucket_of: F) -> Vec<u64>
where
    F: Fn(usize) -> usize + Sync,
{
    let parts = par_chunks(n, MIN_PARALLEL, |lo, hi| {
        let mut hist = vec![0u64; buckets];
        for i in lo..hi {
            let b = bucket_of(i);
            if b < buckets {
                hist[b] += 1;
            }
        }
        hist
    });
    let mut out = vec![0u64; buckets];
    for part in parts {
        for (o, p) in out.iter_mut().zip(part) {
            *o += p;
        }
    }
    out
}

/// [`par_map`] without the `MIN_PARALLEL` small-input fallback, for
/// *coarse-grained* items (e.g. workload queries, each a full table
/// scan) where even a handful of items outweigh thread-spawn cost.
pub fn par_map_heavy<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = max_threads().min(n).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let (lo, hi) = chunk_bounds(n, threads, t);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_reference_argmin(costs: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in costs.iter().enumerate() {
            match best {
                None => best = Some((i, c)),
                Some((_, bc)) if c < bc => best = Some((i, c)),
                _ => {}
            }
        }
        best
    }

    fn pseudo_costs(n: usize, buckets: u64) -> Vec<f64> {
        // deliberately tie-heavy: costs land in a few buckets
        (0..n)
            .map(|i| {
                let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 29;
                (z % buckets) as f64
            })
            .collect()
    }

    #[test]
    fn argmin_matches_sequential_with_ties_across_thread_counts() {
        for n in [1usize, 7, 511, 512, 513, 5000] {
            let costs = pseudo_costs(n, 4);
            let expected = seq_reference_argmin(&costs);
            for threads in [1usize, 2, 3, 8] {
                set_threads(threads);
                let got = par_argmin(n, |i| costs[i]);
                assert_eq!(got, expected, "n={n} threads={threads}");
            }
        }
        set_threads(0);
    }

    #[test]
    fn argmin_empty_is_none() {
        assert_eq!(par_argmin(0, |_| 0.0), None);
    }

    #[test]
    fn argmin_ignores_nan_unless_all_nan() {
        set_threads(4);
        let costs = [f64::NAN, 3.0, f64::NAN, 1.0, 1.0];
        assert_eq!(par_argmin(costs.len(), |i| costs[i]), Some((3, 1.0)));
        let all_nan = [f64::NAN, f64::NAN];
        let (idx, c) = par_argmin(all_nan.len(), |i| all_nan[i]).unwrap();
        assert_eq!(idx, 0);
        assert!(c.is_nan());
        set_threads(0);
    }

    #[test]
    fn map_preserves_index_order() {
        for n in [0usize, 1, 511, 512, 2000] {
            for threads in [1usize, 2, 5] {
                set_threads(threads);
                let out = par_map(n, |i| i * 3);
                assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            }
        }
        set_threads(0);
    }

    #[test]
    fn float_fold_over_par_map_matches_sequential() {
        // the ARE pattern: parallel per-item errors, sequential sum
        let n = 4000;
        set_threads(3);
        let errs = par_map(n, |i| ((i as f64) * 0.1).sin());
        set_threads(0);
        let seq: f64 = (0..n).map(|i| ((i as f64) * 0.1).sin()).sum();
        let par: f64 = errs.iter().sum();
        assert_eq!(seq.to_bits(), par.to_bits(), "bit-identical fold");
    }

    #[test]
    fn heavy_map_parallelizes_small_inputs_in_order() {
        for n in [0usize, 1, 2, 25, 600] {
            for threads in [1usize, 2, 5] {
                set_threads(threads);
                let out = par_map_heavy(n, |i| i as f64 * 0.5);
                assert_eq!(out, (0..n).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
            }
        }
        set_threads(0);
    }

    #[test]
    fn chunks_cover_range_in_order() {
        for n in [0usize, 1, 4, 5, 63, 64, 1000] {
            for threads in [1usize, 2, 3, 8] {
                set_threads(threads);
                let parts = par_chunks(n, 16, |lo, hi| (lo..hi).collect::<Vec<_>>());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} threads={threads}");
            }
        }
        set_threads(0);
    }

    #[test]
    fn chunked_counting_matches_sequential() {
        // the support-kernel pattern: per-chunk count maps merged in
        // chunk order must agree with one sequential pass
        let items: Vec<u32> = (0..5000).map(|i| (i * 7 % 23) as u32).collect();
        let seq = {
            let mut m = vec![0u32; 23];
            for &it in &items {
                m[it as usize] += 1;
            }
            m
        };
        for threads in [1usize, 2, 5] {
            set_threads(threads);
            let parts = par_chunks(items.len(), 8, |lo, hi| {
                let mut m = vec![0u32; 23];
                for &it in &items[lo..hi] {
                    m[it as usize] += 1;
                }
                m
            });
            let mut merged = vec![0u32; 23];
            for p in parts {
                for (i, c) in p.into_iter().enumerate() {
                    merged[i] += c;
                }
            }
            assert_eq!(merged, seq, "threads={threads}");
        }
        set_threads(0);
    }

    #[test]
    fn hist_matches_sequential_at_any_thread_count() {
        let codes: Vec<usize> = (0..4000).map(|i| i * 31 % 17).collect();
        let mut seq = vec![0u64; 17];
        for &c in &codes {
            seq[c] += 1;
        }
        for threads in [1usize, 2, 8] {
            set_threads(threads);
            let got = par_hist(codes.len(), 17, |i| codes[i]);
            assert_eq!(got, seq, "threads={threads}");
        }
        set_threads(0);
        // out-of-range buckets are dropped, empty input yields zeros
        assert_eq!(par_hist(5, 2, |_| 9), vec![0, 0]);
        assert_eq!(par_hist(0, 3, |i| i), vec![0, 0, 0]);
    }

    #[test]
    fn thread_override_wins() {
        set_threads(7);
        assert_eq!(max_threads(), 7);
        set_threads(0);
        assert!(max_threads() >= 1);
    }
}
