//! Dataset schemas: attribute names and kinds.
//!
//! SECRETA datasets have *relational* attributes (categorical or
//! numeric, one value per record) and at most one *transaction*
//! attribute (a set of items per record). Datasets with both are the
//! paper's *RT-datasets*.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// The kind of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Relational, values drawn from an unordered categorical domain
    /// (e.g. *Occupation*).
    Categorical,
    /// Relational, values parse as numbers and are ordered
    /// (e.g. *Age*); hierarchies over numeric attributes are interval
    /// trees.
    Numeric,
    /// The set-valued transaction attribute (e.g. purchased items,
    /// diagnosis codes).
    Transaction,
}

impl AttributeKind {
    /// True for the two relational kinds.
    pub fn is_relational(self) -> bool {
        !matches!(self, AttributeKind::Transaction)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Display name (CSV header).
    pub name: String,
    /// Kind of the attribute.
    pub kind: AttributeKind,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: AttributeKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Categorical relational attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Categorical)
    }

    /// Numeric relational attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Numeric)
    }

    /// The transaction attribute.
    pub fn transaction(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Transaction)
    }
}

/// An ordered list of attributes describing a dataset.
///
/// Invariants (enforced by [`Schema::new`]):
/// * attribute names are unique,
/// * at most one attribute is of kind [`AttributeKind::Transaction`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Validate and build a schema.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DataError> {
        let mut seen = std::collections::HashSet::new();
        let mut tx = 0usize;
        for a in &attributes {
            if !seen.insert(a.name.clone()) {
                return Err(DataError::DuplicateAttribute(a.name.clone()));
            }
            if a.kind == AttributeKind::Transaction {
                tx += 1;
            }
        }
        if tx > 1 {
            return Err(DataError::MultipleTransactionAttributes);
        }
        Ok(Self { attributes })
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes (relational + transaction).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// The attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> Option<&Attribute> {
        self.attributes.get(idx)
    }

    /// Indices of the relational attributes, in declaration order.
    pub fn relational_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_relational())
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the transaction attribute, if any.
    pub fn transaction_index(&self) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.kind == AttributeKind::Transaction)
    }

    /// True when the schema describes an RT-dataset (relational *and*
    /// transaction attributes present).
    pub fn is_rt(&self) -> bool {
        self.transaction_index().is_some() && self.attributes.iter().any(|a| a.kind.is_relational())
    }

    /// Rename the attribute at `idx` (Dataset Editor operation).
    pub fn rename(&mut self, idx: usize, new_name: &str) -> Result<(), DataError> {
        if idx >= self.attributes.len() {
            return Err(DataError::AttributeIndex(idx));
        }
        if self
            .attributes
            .iter()
            .enumerate()
            .any(|(i, a)| i != idx && a.name == new_name)
        {
            return Err(DataError::DuplicateAttribute(new_name.to_owned()));
        }
        self.attributes[idx].name = new_name.to_owned();
        Ok(())
    }

    /// Switch a *relational* attribute between categorical and
    /// numeric. The transaction attribute cannot be retyped this way
    /// (and no attribute can become the transaction attribute) — that
    /// would change the dataset class. Out-of-range indices and
    /// non-relational targets are ignored; retyping is metadata-only
    /// and never invalidates stored ids.
    pub(crate) fn set_kind(&mut self, idx: usize, kind: AttributeKind) {
        if kind == AttributeKind::Transaction {
            return;
        }
        if let Some(a) = self.attributes.get_mut(idx) {
            if a.kind.is_relational() {
                a.kind = kind;
            }
        }
    }

    pub(crate) fn push(&mut self, attr: Attribute) -> Result<usize, DataError> {
        if self.index_of(&attr.name).is_some() {
            return Err(DataError::DuplicateAttribute(attr.name));
        }
        if attr.kind == AttributeKind::Transaction && self.transaction_index().is_some() {
            return Err(DataError::MultipleTransactionAttributes);
        }
        self.attributes.push(attr);
        Ok(self.attributes.len() - 1)
    }

    pub(crate) fn remove(&mut self, idx: usize) -> Result<Attribute, DataError> {
        if idx >= self.attributes.len() {
            return Err(DataError::AttributeIndex(idx));
        }
        Ok(self.attributes.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_schema() -> Schema {
        Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Education"),
            Attribute::transaction("Items"),
        ])
        .unwrap()
    }

    #[test]
    fn rt_schema_classifies_attributes() {
        let s = rt_schema();
        assert!(s.is_rt());
        assert_eq!(s.relational_indices(), vec![0, 1]);
        assert_eq!(s.transaction_index(), Some(2));
        assert_eq!(s.index_of("Education"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn purely_relational_schema_is_not_rt() {
        let s = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        assert!(!s.is_rt());
        assert_eq!(s.transaction_index(), None);
    }

    #[test]
    fn purely_transactional_schema_is_not_rt() {
        let s = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        assert!(!s.is_rt());
        assert_eq!(s.relational_indices(), Vec::<usize>::new());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Age"),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute(_)));
    }

    #[test]
    fn two_transaction_attributes_rejected() {
        let err = Schema::new(vec![
            Attribute::transaction("A"),
            Attribute::transaction("B"),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::MultipleTransactionAttributes));
    }

    #[test]
    fn rename_enforces_uniqueness() {
        let mut s = rt_schema();
        assert!(s.rename(0, "Education").is_err());
        s.rename(0, "YearsOld").unwrap();
        assert_eq!(s.attribute(0).unwrap().name, "YearsOld");
        // renaming to own current name is a no-op, not a collision
        s.rename(0, "YearsOld").unwrap();
        assert!(s.rename(99, "X").is_err());
    }

    #[test]
    fn push_guards_invariants() {
        let mut s = rt_schema();
        assert!(s.push(Attribute::transaction("More")).is_err());
        assert!(s.push(Attribute::categorical("Age")).is_err());
        let idx = s.push(Attribute::categorical("Zip")).unwrap();
        assert_eq!(idx, 3);
    }
}
