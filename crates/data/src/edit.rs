//! Dataset Editor command layer.
//!
//! The SECRETA GUI lets a data publisher "modify it (edit attribute
//! names and values, add/delete rows and attributes, etc.) and store
//! the changes". This module reifies those edits as serializable
//! [`EditCommand`] values so that editing sessions can be scripted,
//! replayed and undone from the CLI frontend.

use crate::error::DataError;
use crate::schema::AttributeKind;
use crate::table::RtTable;
use serde::{Deserialize, Serialize};

/// One Dataset Editor operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EditCommand {
    /// Rename the attribute at `attr` to `name`.
    RenameAttribute { attr: usize, name: String },
    /// Rename domain value `old` of relational attribute `attr` to
    /// `new` in every record.
    RenameValue {
        attr: usize,
        old: String,
        new: String,
    },
    /// Overwrite relational cell `(row, attr)`.
    SetValue {
        row: usize,
        attr: usize,
        value: String,
    },
    /// Replace `row`'s transaction item set.
    SetTransaction { row: usize, items: Vec<String> },
    /// Append a record.
    AddRow {
        rel_values: Vec<String>,
        items: Vec<String>,
    },
    /// Delete record `row`.
    DeleteRow { row: usize },
    /// Add a relational attribute filled with `default`.
    AddAttribute {
        name: String,
        kind: AttributeKind,
        default: String,
    },
    /// Delete relational attribute `attr`.
    DeleteAttribute { attr: usize },
}

/// Apply `cmd` to `table`, returning the inverse command when the edit
/// is undoable. `DeleteAttribute` is not invertible (the column's
/// per-row values are discarded) and returns `None`.
pub fn apply(table: &mut RtTable, cmd: &EditCommand) -> Result<Option<EditCommand>, DataError> {
    match cmd {
        EditCommand::RenameAttribute { attr, name } => {
            let old = table
                .schema()
                .attribute(*attr)
                .ok_or(DataError::AttributeIndex(*attr))?
                .name
                .clone();
            table.rename_attribute(*attr, name)?;
            Ok(Some(EditCommand::RenameAttribute {
                attr: *attr,
                name: old,
            }))
        }
        EditCommand::RenameValue { attr, old, new } => {
            table.rename_value(*attr, old, new)?;
            Ok(Some(EditCommand::RenameValue {
                attr: *attr,
                old: new.clone(),
                new: old.clone(),
            }))
        }
        EditCommand::SetValue { row, attr, value } => {
            if *row >= table.n_rows() {
                return Err(DataError::RowIndex(*row));
            }
            let a = table
                .schema()
                .attribute(*attr)
                .ok_or(DataError::AttributeIndex(*attr))?;
            if !a.kind.is_relational() {
                return Err(DataError::NotRelational(a.name.clone()));
            }
            let old = table.value_str(*row, *attr).to_owned();
            table.set_value(*row, *attr, value)?;
            Ok(Some(EditCommand::SetValue {
                row: *row,
                attr: *attr,
                value: old,
            }))
        }
        EditCommand::SetTransaction { row, items } => {
            if *row >= table.n_rows() {
                return Err(DataError::RowIndex(*row));
            }
            let old: Vec<String> = table
                .transaction_strs(*row)
                .into_iter()
                .map(str::to_owned)
                .collect();
            let refs: Vec<&str> = items.iter().map(String::as_str).collect();
            table.set_transaction(*row, &refs)?;
            Ok(Some(EditCommand::SetTransaction {
                row: *row,
                items: old,
            }))
        }
        EditCommand::AddRow { rel_values, items } => {
            let rel: Vec<&str> = rel_values.iter().map(String::as_str).collect();
            let it: Vec<&str> = items.iter().map(String::as_str).collect();
            table.push_row(&rel, &it)?;
            Ok(Some(EditCommand::DeleteRow {
                row: table.n_rows() - 1,
            }))
        }
        EditCommand::DeleteRow { row } => {
            if *row >= table.n_rows() {
                return Err(DataError::RowIndex(*row));
            }
            let rel_idx = table.schema().relational_indices();
            let rel_values: Vec<String> = rel_idx
                .iter()
                .map(|&a| table.value_str(*row, a).to_owned())
                .collect();
            let items: Vec<String> = table
                .transaction_strs(*row)
                .into_iter()
                .map(str::to_owned)
                .collect();
            table.remove_row(*row)?;
            // Undo re-appends at the end; row identity is positional in
            // SECRETA's editor, so this restores content, not position.
            Ok(Some(EditCommand::AddRow { rel_values, items }))
        }
        EditCommand::AddAttribute {
            name,
            kind,
            default,
        } => {
            let idx = table.add_attribute(name, *kind, default)?;
            Ok(Some(EditCommand::DeleteAttribute { attr: idx }))
        }
        EditCommand::DeleteAttribute { attr } => {
            table.delete_attribute(*attr)?;
            Ok(None)
        }
    }
}

/// An editing session with an undo stack, mirroring interactive use of
/// the Dataset Editor.
#[derive(Debug, Default)]
pub struct EditSession {
    undo_stack: Vec<EditCommand>,
    applied: usize,
}

impl EditSession {
    /// Fresh session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commands applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// True when at least one applied command can be undone.
    pub fn can_undo(&self) -> bool {
        !self.undo_stack.is_empty()
    }

    /// Apply a command, recording its inverse (when invertible).
    pub fn apply(&mut self, table: &mut RtTable, cmd: &EditCommand) -> Result<(), DataError> {
        let inverse = apply(table, cmd)?;
        self.applied += 1;
        if let Some(inv) = inverse {
            self.undo_stack.push(inv);
        } else {
            // Non-invertible edit: earlier undos may now refer to
            // shifted indices; drop them rather than corrupt the table.
            self.undo_stack.clear();
        }
        Ok(())
    }

    /// Undo the most recent invertible command.
    pub fn undo(&mut self, table: &mut RtTable) -> Result<bool, DataError> {
        match self.undo_stack.pop() {
            Some(inv) => {
                apply(table, &inv)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a", "b"]).unwrap();
        t.push_row(&["41"], &["c"]).unwrap();
        t
    }

    #[test]
    fn set_value_roundtrips_through_undo() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(
            &mut t,
            &EditCommand::SetValue {
                row: 0,
                attr: 0,
                value: "99".into(),
            },
        )
        .unwrap();
        assert_eq!(t.value_str(0, 0), "99");
        assert!(s.undo(&mut t).unwrap());
        assert_eq!(t.value_str(0, 0), "30");
        assert!(!s.undo(&mut t).unwrap());
    }

    #[test]
    fn delete_row_undo_restores_content() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(&mut t, &EditCommand::DeleteRow { row: 0 }).unwrap();
        assert_eq!(t.n_rows(), 1);
        s.undo(&mut t).unwrap();
        assert_eq!(t.n_rows(), 2);
        // content restored (appended at the end)
        assert_eq!(t.value_str(1, 0), "30");
        assert_eq!(t.transaction_strs(1), vec!["a", "b"]);
    }

    #[test]
    fn add_row_undo_removes_it() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(
            &mut t,
            &EditCommand::AddRow {
                rel_values: vec!["55".into()],
                items: vec!["z".into()],
            },
        )
        .unwrap();
        assert_eq!(t.n_rows(), 3);
        s.undo(&mut t).unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn set_transaction_undo() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(
            &mut t,
            &EditCommand::SetTransaction {
                row: 1,
                items: vec!["x".into(), "y".into()],
            },
        )
        .unwrap();
        assert_eq!(t.transaction_strs(1), vec!["x", "y"]);
        s.undo(&mut t).unwrap();
        assert_eq!(t.transaction_strs(1), vec!["c"]);
    }

    #[test]
    fn rename_attribute_and_value_undo() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(
            &mut t,
            &EditCommand::RenameAttribute {
                attr: 0,
                name: "Years".into(),
            },
        )
        .unwrap();
        s.apply(
            &mut t,
            &EditCommand::RenameValue {
                attr: 0,
                old: "30".into(),
                new: "thirty".into(),
            },
        )
        .unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().name, "Years");
        assert_eq!(t.value_str(0, 0), "thirty");
        s.undo(&mut t).unwrap();
        s.undo(&mut t).unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().name, "Age");
        assert_eq!(t.value_str(0, 0), "30");
    }

    #[test]
    fn delete_attribute_clears_undo_history() {
        let mut t = table();
        let mut s = EditSession::new();
        s.apply(
            &mut t,
            &EditCommand::AddAttribute {
                name: "Zip".into(),
                kind: AttributeKind::Categorical,
                default: "000".into(),
            },
        )
        .unwrap();
        s.apply(&mut t, &EditCommand::DeleteAttribute { attr: 2 })
            .unwrap();
        assert!(!s.can_undo());
        assert_eq!(s.applied(), 2);
    }

    #[test]
    fn errors_do_not_mutate_session() {
        let mut t = table();
        let mut s = EditSession::new();
        let err = s.apply(&mut t, &EditCommand::DeleteRow { row: 42 });
        assert!(err.is_err());
        assert_eq!(s.applied(), 0);
        assert!(!s.can_undo());
    }

    #[test]
    fn commands_serialize_to_json() {
        let cmd = EditCommand::SetValue {
            row: 1,
            attr: 0,
            value: "x".into(),
        };
        let json = serde_json::to_string(&cmd).unwrap();
        let back: EditCommand = serde_json::from_str(&json).unwrap();
        assert_eq!(cmd, back);
    }
}
