//! Error type shared by the dataset substrate.

use std::fmt;

/// Errors raised while loading, editing or validating datasets.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure (file missing, permission, ...).
    Io(std::io::Error),
    /// A CSV line had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number in the file.
        line: usize,
        /// Fields found on the line.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// The file contained no header/rows to infer a schema from.
    EmptyInput,
    /// An attribute name was referenced but does not exist.
    UnknownAttribute(String),
    /// An attribute index was out of range.
    AttributeIndex(usize),
    /// A row index was out of range.
    RowIndex(usize),
    /// Operation applies to relational attributes only.
    NotRelational(String),
    /// Operation applies to the transaction attribute only.
    NotTransaction(String),
    /// A schema declared more than one transaction attribute.
    MultipleTransactionAttributes,
    /// Attribute names must be unique within a schema.
    DuplicateAttribute(String),
    /// Free-form invariant violation with context.
    Invalid(String),
    /// The enforced memory budget would be exceeded; raised by the
    /// chunked ingest instead of letting the process grow until the
    /// OOM killer takes it.
    BudgetExceeded {
        /// The configured budget, in bytes.
        budget_bytes: u64,
        /// Accounted bytes the operation would have needed.
        needed_bytes: u64,
    },
    /// An error raised while reading or writing a specific file; the
    /// path gives users actionable context the bare error lacks.
    InFile {
        /// The file being read or written.
        path: std::path::PathBuf,
        /// The underlying failure.
        error: Box<DataError>,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: found {found} fields, expected {expected}"),
            DataError::EmptyInput => write!(f, "input contains no data"),
            DataError::UnknownAttribute(name) => {
                write!(f, "unknown attribute {name:?}")
            }
            DataError::AttributeIndex(i) => {
                write!(f, "attribute index {i} out of range")
            }
            DataError::RowIndex(i) => write!(f, "row index {i} out of range"),
            DataError::NotRelational(name) => {
                write!(f, "attribute {name:?} is not relational")
            }
            DataError::NotTransaction(name) => {
                write!(f, "attribute {name:?} is not the transaction attribute")
            }
            DataError::MultipleTransactionAttributes => {
                write!(f, "a dataset may declare at most one transaction attribute")
            }
            DataError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name {name:?}")
            }
            DataError::Invalid(msg) => write!(f, "{msg}"),
            DataError::BudgetExceeded {
                budget_bytes,
                needed_bytes,
            } => write!(
                f,
                "memory budget exceeded: needed {needed_bytes} bytes, budget {budget_bytes}"
            ),
            DataError::InFile { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::InFile { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = DataError::RaggedRow {
            line: 7,
            found: 3,
            expected: 5,
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains('3'));
        assert!(s.contains('5'));

        assert!(DataError::UnknownAttribute("age".into())
            .to_string()
            .contains("age"));
        assert!(DataError::EmptyInput.to_string().contains("no data"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
