//! Column-oriented RT-dataset table.
//!
//! [`RtTable`] stores each relational attribute as a dense column of
//! interned [`ValueId`]s and the (optional) transaction attribute in
//! CSR form (an offsets array plus a flat, per-row-sorted item
//! buffer). This keeps the hot loops of every anonymization algorithm
//! — equivalence-class grouping, itemset support counting — on
//! contiguous integer memory.

use crate::error::DataError;
use crate::schema::{AttributeKind, Schema};
use crate::value::{ItemId, ValueId, ValuePool};

/// An RT-dataset: records with relational and/or transaction parts.
///
/// ```
/// use secreta_data::{Attribute, RtTable, Schema};
///
/// let schema = Schema::new(vec![
///     Attribute::numeric("Age"),
///     Attribute::transaction("Items"),
/// ])?;
/// let mut table = RtTable::new(schema);
/// table.push_row(&["34"], &["milk", "bread"])?;
/// table.push_row(&["57"], &["beer"])?;
///
/// assert_eq!(table.n_rows(), 2);
/// assert_eq!(table.value_str(0, 0), "34");
/// assert_eq!(table.transaction_strs(1), vec!["beer"]);
/// assert_eq!(table.item_universe(), 3);
/// # Ok::<(), secreta_data::DataError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RtTable {
    schema: Schema,
    /// One pool per attribute; the transaction attribute's pool interns
    /// the item universe.
    pools: Vec<ValuePool>,
    /// One column per attribute; the transaction attribute's column
    /// stays empty (its data lives in the CSR buffers below).
    columns: Vec<Vec<ValueId>>,
    /// CSR offsets (`n_rows + 1` entries) into `tx_items`; empty when
    /// the schema has no transaction attribute.
    tx_offsets: Vec<u32>,
    /// Flat item buffer; each row's slice is sorted and duplicate-free.
    tx_items: Vec<ItemId>,
    n_rows: usize,
}

impl Default for Schema {
    fn default() -> Self {
        Schema::new(Vec::new()).expect("empty schema is valid")
    }
}

/// A borrowed view of one record.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    table: &'a RtTable,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Row index within the table.
    pub fn index(&self) -> usize {
        self.row
    }

    /// Interned value of relational attribute `attr`.
    pub fn value(&self, attr: usize) -> ValueId {
        self.table.value(self.row, attr)
    }

    /// Items of the transaction attribute (empty slice when absent).
    pub fn transaction(&self) -> &'a [ItemId] {
        self.table.transaction(self.row)
    }
}

/// A zero-copy view of the transactions of a block of consecutive
/// rows, yielded by [`RtTable::tx_chunks`]. Kernel construction
/// iterates these instead of issuing one random access per row, which
/// keeps the CSR walk sequential and cache-resident.
#[derive(Debug, Clone, Copy)]
pub struct TxChunk<'a> {
    start: usize,
    n_rows: usize,
    /// Absolute CSR offsets for rows `start..start + n_rows` (length
    /// `n_rows + 1`); empty when the schema has no transaction
    /// attribute.
    offsets: &'a [u32],
    /// The table's full item buffer (offsets are absolute).
    items: &'a [ItemId],
}

impl<'a> TxChunk<'a> {
    pub(crate) fn from_raw(
        start: usize,
        n_rows: usize,
        offsets: &'a [u32],
        items: &'a [ItemId],
    ) -> TxChunk<'a> {
        TxChunk {
            start,
            n_rows,
            offsets,
            items,
        }
    }

    /// Global index of the chunk's first row.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Transaction of the chunk-local row `local` (empty when the
    /// schema has no transaction attribute).
    #[inline]
    pub fn transaction(&self, local: usize) -> &'a [ItemId] {
        if self.offsets.is_empty() {
            return &[];
        }
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        &self.items[lo..hi]
    }

    /// Iterate `(global_row, transaction)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &'a [ItemId])> + '_ {
        (0..self.n_rows).map(move |local| (self.start + local, self.transaction(local)))
    }
}

impl RtTable {
    /// Empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        let has_tx = schema.transaction_index().is_some();
        Self {
            schema,
            pools: vec![ValuePool::new(); n],
            columns: vec![Vec::new(); n],
            tx_offsets: if has_tx { vec![0] } else { Vec::new() },
            tx_items: Vec::new(),
            n_rows: 0,
        }
    }

    /// Assemble a table directly from pre-built columnar parts. Used
    /// by the chunked ingest ([`crate::chunk::ChunkedTable`]) to
    /// materialize without re-interning; callers guarantee the parts
    /// are mutually consistent (dense ids, sorted/deduped CSR rows).
    pub(crate) fn from_parts(
        schema: Schema,
        pools: Vec<ValuePool>,
        columns: Vec<Vec<ValueId>>,
        tx_offsets: Vec<u32>,
        tx_items: Vec<ItemId>,
        n_rows: usize,
    ) -> Self {
        Self {
            schema,
            pools,
            columns,
            tx_offsets,
            tx_items,
            n_rows,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Reclassify relational attributes whose every value parses as a
    /// number from categorical to numeric, mirroring the detection
    /// rule of [`crate::stats::summarize`]. The chunked load path uses
    /// this to type columns after a single streaming pass instead of
    /// re-reading the file.
    pub fn reclassify_numeric(&mut self) {
        let tx_idx = self.schema.transaction_index();
        for attr in 0..self.schema.len() {
            if Some(attr) == tx_idx || self.columns[attr].is_empty() {
                continue;
            }
            let pool = &self.pools[attr];
            let numeric = !pool.is_empty() && pool.iter().all(|(_, v)| v.parse::<f64>().is_ok());
            if numeric {
                self.schema.set_kind(attr, AttributeKind::Numeric);
            }
        }
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Value pool (domain) of attribute `attr`.
    pub fn pool(&self, attr: usize) -> &ValuePool {
        &self.pools[attr]
    }

    /// Item pool of the transaction attribute, if present.
    pub fn item_pool(&self) -> Option<&ValuePool> {
        self.schema.transaction_index().map(|i| &self.pools[i])
    }

    /// Number of distinct items seen in the transaction attribute.
    pub fn item_universe(&self) -> usize {
        self.item_pool().map_or(0, ValuePool::len)
    }

    /// Number of distinct values of relational attribute `attr`.
    pub fn domain_size(&self, attr: usize) -> usize {
        self.pools[attr].len()
    }

    /// Interned value of relational attribute `attr` in `row`.
    ///
    /// Panics if `attr` is the transaction attribute or out of range;
    /// those are programming errors, not data errors.
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> ValueId {
        self.columns[attr][row]
    }

    /// Textual value of relational attribute `attr` in `row`.
    pub fn value_str(&self, row: usize, attr: usize) -> &str {
        self.pools[attr].resolve(self.value(row, attr).0)
    }

    /// Whole relational column `attr`.
    pub fn column(&self, attr: usize) -> &[ValueId] {
        &self.columns[attr]
    }

    /// The sorted, duplicate-free item slice of `row`'s transaction
    /// (empty when the schema has no transaction attribute).
    #[inline]
    pub fn transaction(&self, row: usize) -> &[ItemId] {
        if self.tx_offsets.is_empty() {
            return &[];
        }
        let lo = self.tx_offsets[row] as usize;
        let hi = self.tx_offsets[row + 1] as usize;
        &self.tx_items[lo..hi]
    }

    /// Textual items of `row`'s transaction.
    pub fn transaction_strs(&self, row: usize) -> Vec<&str> {
        let pool = match self.item_pool() {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.transaction(row)
            .iter()
            .map(|it| pool.resolve(it.0))
            .collect()
    }

    /// Iterate all records.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.n_rows).map(move |row| RowRef { table: self, row })
    }

    /// Iterate the transaction column in blocks of `chunk_rows`
    /// consecutive rows (the final chunk may be shorter). Panics if
    /// `chunk_rows` is zero.
    pub fn tx_chunks(&self, chunk_rows: usize) -> impl Iterator<Item = TxChunk<'_>> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let n = self.n_rows;
        (0..n).step_by(chunk_rows).map(move |start| {
            let len = chunk_rows.min(n - start);
            TxChunk {
                start,
                n_rows: len,
                offsets: if self.tx_offsets.is_empty() {
                    &[]
                } else {
                    &self.tx_offsets[start..start + len + 1]
                },
                items: &self.tx_items,
            }
        })
    }

    /// Iterate relational column `attr` in blocks of `chunk_rows`
    /// values, paired with the global index of each block's first row.
    pub fn column_chunks(
        &self,
        attr: usize,
        chunk_rows: usize,
    ) -> impl Iterator<Item = (usize, &[ValueId])> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        self.columns[attr]
            .chunks(chunk_rows)
            .enumerate()
            .map(move |(i, block)| (i * chunk_rows, block))
    }

    /// Deterministic estimate of the table's heap footprint in bytes:
    /// the columnar buffers at 4 bytes per id plus the interned pools
    /// (see [`ValuePool::estimated_bytes`]). Used for memory-budget
    /// accounting, where a reproducible figure matters more than
    /// allocator-exact truth.
    pub fn estimated_bytes(&self) -> u64 {
        let cols: u64 = self.columns.iter().map(|c| 4 * c.len() as u64).sum();
        let csr = 4 * (self.tx_offsets.len() as u64 + self.tx_items.len() as u64);
        let pools: u64 = self.pools.iter().map(ValuePool::estimated_bytes).sum();
        cols + csr + pools
    }

    /// Append a record given textual relational values (in relational
    /// attribute order) and textual transaction items.
    pub fn push_row(&mut self, rel_values: &[&str], items: &[&str]) -> Result<(), DataError> {
        let rel_idx = self.schema.relational_indices();
        if rel_values.len() != rel_idx.len() {
            return Err(DataError::Invalid(format!(
                "expected {} relational values, got {}",
                rel_idx.len(),
                rel_values.len()
            )));
        }
        for (pos, &attr) in rel_idx.iter().enumerate() {
            let id = self.pools[attr].intern(rel_values[pos]);
            self.columns[attr].push(ValueId(id));
        }
        if let Some(tx) = self.schema.transaction_index() {
            let mut ids: Vec<ItemId> = items
                .iter()
                .map(|s| ItemId(self.pools[tx].intern(s)))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            self.tx_items.extend_from_slice(&ids);
            self.tx_offsets.push(self.tx_items.len() as u32);
        } else if !items.is_empty() {
            return Err(DataError::Invalid(
                "schema has no transaction attribute but items were supplied".into(),
            ));
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Append a record from already-interned ids. `rel_values` must be
    /// in relational attribute order and every id must already exist in
    /// the corresponding pool; `items` likewise. Used by generators.
    pub fn push_row_ids(
        &mut self,
        rel_values: &[ValueId],
        items: &[ItemId],
    ) -> Result<(), DataError> {
        let rel_idx = self.schema.relational_indices();
        if rel_values.len() != rel_idx.len() {
            return Err(DataError::Invalid(format!(
                "expected {} relational values, got {}",
                rel_idx.len(),
                rel_values.len()
            )));
        }
        for (pos, &attr) in rel_idx.iter().enumerate() {
            let v = rel_values[pos];
            if v.index() >= self.pools[attr].len() {
                return Err(DataError::Invalid(format!(
                    "value id {v} not interned in attribute {}",
                    self.schema.attribute(attr).expect("attr in range").name
                )));
            }
            self.columns[attr].push(v);
        }
        if let Some(tx) = self.schema.transaction_index() {
            let universe = self.pools[tx].len();
            let mut ids = items.to_vec();
            ids.sort_unstable();
            ids.dedup();
            if ids.iter().any(|it| it.index() >= universe) {
                return Err(DataError::Invalid("item id not interned".into()));
            }
            self.tx_items.extend_from_slice(&ids);
            self.tx_offsets.push(self.tx_items.len() as u32);
        } else if !items.is_empty() {
            return Err(DataError::Invalid(
                "schema has no transaction attribute but items were supplied".into(),
            ));
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Intern a value into attribute `attr`'s pool without touching any
    /// row. Generators pre-populate domains this way.
    pub fn intern_value(&mut self, attr: usize, value: &str) -> Result<ValueId, DataError> {
        let a = self
            .schema
            .attribute(attr)
            .ok_or(DataError::AttributeIndex(attr))?;
        if !a.kind.is_relational() {
            return Err(DataError::NotRelational(a.name.clone()));
        }
        Ok(ValueId(self.pools[attr].intern(value)))
    }

    /// Intern an item into the transaction attribute's pool.
    pub fn intern_item(&mut self, item: &str) -> Result<ItemId, DataError> {
        let tx = self
            .schema
            .transaction_index()
            .ok_or_else(|| DataError::Invalid("schema has no transaction attribute".into()))?;
        Ok(ItemId(self.pools[tx].intern(item)))
    }

    /// Remove record `row` (Dataset Editor operation). O(n) due to the
    /// CSR rebuild; editing is interactive-scale in SECRETA.
    pub fn remove_row(&mut self, row: usize) -> Result<(), DataError> {
        if row >= self.n_rows {
            return Err(DataError::RowIndex(row));
        }
        for col in &mut self.columns {
            if !col.is_empty() {
                col.remove(row);
            }
        }
        if !self.tx_offsets.is_empty() {
            let lo = self.tx_offsets[row] as usize;
            let hi = self.tx_offsets[row + 1] as usize;
            let removed = (hi - lo) as u32;
            self.tx_items.drain(lo..hi);
            self.tx_offsets.remove(row + 1);
            for off in self.tx_offsets.iter_mut().skip(row + 1) {
                *off -= removed;
            }
        }
        self.n_rows -= 1;
        Ok(())
    }

    /// Overwrite the relational cell `(row, attr)` with `value`,
    /// interning it if new (Dataset Editor operation).
    pub fn set_value(&mut self, row: usize, attr: usize, value: &str) -> Result<(), DataError> {
        if row >= self.n_rows {
            return Err(DataError::RowIndex(row));
        }
        let a = self
            .schema
            .attribute(attr)
            .ok_or(DataError::AttributeIndex(attr))?;
        if !a.kind.is_relational() {
            return Err(DataError::NotRelational(a.name.clone()));
        }
        let id = self.pools[attr].intern(value);
        self.columns[attr][row] = ValueId(id);
        Ok(())
    }

    /// Replace `row`'s transaction with `items` (Dataset Editor
    /// operation). O(n) CSR rebuild.
    pub fn set_transaction(&mut self, row: usize, items: &[&str]) -> Result<(), DataError> {
        if row >= self.n_rows {
            return Err(DataError::RowIndex(row));
        }
        let tx = self
            .schema
            .transaction_index()
            .ok_or_else(|| DataError::Invalid("schema has no transaction attribute".into()))?;
        let mut ids: Vec<ItemId> = items
            .iter()
            .map(|s| ItemId(self.pools[tx].intern(s)))
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let lo = self.tx_offsets[row] as usize;
        let hi = self.tx_offsets[row + 1] as usize;
        let old_len = hi - lo;
        let delta = ids.len() as i64 - old_len as i64;
        self.tx_items.splice(lo..hi, ids);
        for off in self.tx_offsets.iter_mut().skip(row + 1) {
            *off = (*off as i64 + delta) as u32;
        }
        Ok(())
    }

    /// Add a relational attribute filled with `default` in every
    /// existing record (Dataset Editor operation).
    pub fn add_attribute(
        &mut self,
        name: &str,
        kind: AttributeKind,
        default: &str,
    ) -> Result<usize, DataError> {
        if kind == AttributeKind::Transaction {
            return Err(DataError::Invalid(
                "adding a transaction attribute to an existing table is unsupported".into(),
            ));
        }
        let idx = self
            .schema
            .push(crate::schema::Attribute::new(name, kind))?;
        let mut pool = ValuePool::new();
        let id = ValueId(pool.intern(default));
        self.pools.push(pool);
        self.columns.push(vec![id; self.n_rows]);
        Ok(idx)
    }

    /// Delete a relational attribute and its column (Dataset Editor
    /// operation). The transaction attribute cannot be deleted this
    /// way — its removal would change the dataset class.
    pub fn delete_attribute(&mut self, attr: usize) -> Result<(), DataError> {
        let a = self
            .schema
            .attribute(attr)
            .ok_or(DataError::AttributeIndex(attr))?;
        if !a.kind.is_relational() {
            return Err(DataError::NotRelational(a.name.clone()));
        }
        self.schema.remove(attr)?;
        self.pools.remove(attr);
        self.columns.remove(attr);
        Ok(())
    }

    /// Rename an attribute (delegates to the schema; Dataset Editor
    /// operation).
    pub fn rename_attribute(&mut self, attr: usize, new_name: &str) -> Result<(), DataError> {
        self.schema.rename(attr, new_name)
    }

    /// Rename a *domain value* of relational attribute `attr` in every
    /// record at once (Dataset Editor "edit attribute values").
    pub fn rename_value(&mut self, attr: usize, old: &str, new: &str) -> Result<(), DataError> {
        let a = self
            .schema
            .attribute(attr)
            .ok_or(DataError::AttributeIndex(attr))?;
        if !a.kind.is_relational() {
            return Err(DataError::NotRelational(a.name.clone()));
        }
        let id = self.pools[attr]
            .get(old)
            .ok_or_else(|| DataError::Invalid(format!("value {old:?} not present")))?;
        self.pools[attr].rename(id, new)
    }

    /// Total number of item occurrences across all transactions.
    pub fn total_items(&self) -> usize {
        self.tx_items.len()
    }

    /// Average transaction length, or 0.0 without a transaction
    /// attribute or rows.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.n_rows == 0 || self.tx_offsets.is_empty() {
            0.0
        } else {
            self.tx_items.len() as f64 / self.n_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn rt_table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30", "BSc"], &["milk", "bread"]).unwrap();
        t.push_row(&["41", "MSc"], &["beer"]).unwrap();
        t.push_row(&["30", "BSc"], &["bread", "milk", "milk"])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = rt_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value_str(0, 0), "30");
        assert_eq!(t.value_str(1, 1), "MSc");
        assert_eq!(t.transaction_strs(1), vec!["beer"]);
        assert_eq!(t.domain_size(0), 2);
        assert_eq!(t.item_universe(), 3);
    }

    #[test]
    fn transactions_are_sorted_and_deduped() {
        let t = rt_table();
        let tx = t.transaction(2);
        assert_eq!(tx.len(), 2, "duplicate 'milk' must collapse");
        assert!(tx.windows(2).all(|w| w[0] < w[1]));
        // rows 0 and 2 contain the same item set
        assert_eq!(t.transaction(0), t.transaction(2));
    }

    #[test]
    fn remove_row_fixes_offsets() {
        let mut t = rt_table();
        t.remove_row(0).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.transaction_strs(0), vec!["beer"]);
        assert_eq!(t.transaction(1).len(), 2);
        assert!(t.remove_row(5).is_err());
    }

    #[test]
    fn remove_last_row() {
        let mut t = rt_table();
        t.remove_row(2).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.total_items(), 3);
    }

    #[test]
    fn set_value_interns_new_values() {
        let mut t = rt_table();
        t.set_value(1, 0, "55").unwrap();
        assert_eq!(t.value_str(1, 0), "55");
        assert_eq!(t.domain_size(0), 3);
        assert!(t.set_value(0, 2, "x").is_err(), "tx attr is not relational");
        assert!(t.set_value(9, 0, "x").is_err());
    }

    #[test]
    fn set_transaction_rebuilds_csr() {
        let mut t = rt_table();
        t.set_transaction(0, &["wine", "beer", "wine"]).unwrap();
        assert_eq!(t.transaction_strs(0), vec!["beer", "wine"]);
        // later rows still intact
        assert_eq!(t.transaction_strs(1), vec!["beer"]);
        assert_eq!(t.transaction(2).len(), 2);
    }

    #[test]
    fn set_transaction_shrinking_and_growing() {
        let mut t = rt_table();
        t.set_transaction(1, &["a", "b", "c", "d"]).unwrap();
        assert_eq!(t.transaction(1).len(), 4);
        assert_eq!(t.transaction(2).len(), 2);
        t.set_transaction(1, &[]).unwrap();
        assert_eq!(t.transaction(1).len(), 0);
        assert_eq!(t.transaction(2).len(), 2);
    }

    #[test]
    fn add_and_delete_attribute() {
        let mut t = rt_table();
        let idx = t
            .add_attribute("Country", AttributeKind::Categorical, "GR")
            .unwrap();
        assert_eq!(t.value_str(0, idx), "GR");
        assert_eq!(t.schema().len(), 4);
        t.delete_attribute(idx).unwrap();
        assert_eq!(t.schema().len(), 3);
        assert!(t.delete_attribute(2).is_err(), "cannot delete tx attr");
    }

    #[test]
    fn rename_attribute_and_value() {
        let mut t = rt_table();
        t.rename_attribute(1, "Degree").unwrap();
        assert_eq!(t.schema().attribute(1).unwrap().name, "Degree");
        t.rename_value(1, "BSc", "Bachelor").unwrap();
        assert_eq!(t.value_str(0, 1), "Bachelor");
        assert!(t.rename_value(1, "PhD", "Doctor").is_err());
    }

    #[test]
    fn push_row_arity_checked() {
        let mut t = rt_table();
        assert!(t.push_row(&["30"], &[]).is_err());
    }

    #[test]
    fn relational_only_table_rejects_items() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        assert!(t.push_row(&["30"], &["x"]).is_err());
        t.push_row(&["30"], &[]).unwrap();
        assert_eq!(t.transaction(0), &[] as &[ItemId]);
        assert_eq!(t.avg_transaction_len(), 0.0);
    }

    #[test]
    fn push_row_ids_validates() {
        let mut t = rt_table();
        let v0 = t.intern_value(0, "30").unwrap();
        let v1 = t.intern_value(1, "BSc").unwrap();
        let it = t.intern_item("milk").unwrap();
        t.push_row_ids(&[v0, v1], &[it]).unwrap();
        assert_eq!(t.n_rows(), 4);
        assert!(t.push_row_ids(&[ValueId(99), v1], &[]).is_err());
        assert!(t.push_row_ids(&[v0, v1], &[ItemId(99)]).is_err());
    }

    #[test]
    fn rows_iterator_matches_direct_access() {
        let t = rt_table();
        for r in t.rows() {
            assert_eq!(r.value(0), t.value(r.index(), 0));
            assert_eq!(r.transaction(), t.transaction(r.index()));
        }
        assert_eq!(t.rows().count(), 3);
    }

    #[test]
    fn avg_transaction_len() {
        let t = rt_table();
        assert!((t.avg_transaction_len() - 5.0 / 3.0).abs() < 1e-12);
    }
}
