//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! Equivalence-class grouping and itemset support counting hash
//! millions of small integer keys; the standard library's SipHash is
//! a poor fit (see the Rust Performance Book, "Hashing"). This is the
//! FxHash multiply-rotate scheme used by rustc, implemented locally so
//! the workspace stays within its approved dependency set.
//!
//! Not HashDoS-resistant — do not expose to untrusted keys on a
//! network boundary. All SECRETA inputs are local files.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // FxHash is not perfect but must not collapse small integers.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), usize> = map_with_capacity(8);
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m[&(1, 2)], 3);
        assert_eq!(m[&(2, 1)], 4);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_stream_equivalence_is_order_sensitive() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh12345678");
        let mut b = FxHasher::default();
        b.write(b"12345678abcdefgh");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn set_with_capacity_starts_empty() {
        let s: FxHashSet<u32> = set_with_capacity(100);
        assert!(s.is_empty());
        assert!(s.capacity() >= 100);
    }
}
