//! CSV reading and writing in SECRETA's dataset format.
//!
//! The paper requires datasets "provided in a Comma-Separated Values
//! (CSV) format". Relational attributes occupy one field each; the
//! transaction attribute packs its items into a single field separated
//! by an intra-field delimiter (space by default). Fields containing
//! the delimiter may be double-quoted with `""` escaping.
//!
//! Which columns are relational/numeric/transaction is given by a
//! [`CsvOptions`] value, mirroring the type annotations the SECRETA
//! GUI collects when a file is loaded.

use crate::error::DataError;
use crate::schema::{Attribute, AttributeKind, Schema};
use crate::table::RtTable;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parsing/serialization options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Delimiter between items inside the transaction field
    /// (default space).
    pub item_delimiter: char,
    /// Whether the first line is a header of attribute names.
    pub has_header: bool,
    /// Name (when `has_header`) or 0-based index (otherwise, as a
    /// decimal string) of the transaction column, if any.
    pub transaction_column: Option<String>,
    /// Names/indices of columns to treat as numeric.
    pub numeric_columns: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            item_delimiter: ' ',
            has_header: true,
            transaction_column: None,
            numeric_columns: Vec::new(),
        }
    }
}

impl CsvOptions {
    /// Options for an RT-dataset whose transaction column is `name`.
    pub fn with_transaction(name: impl Into<String>) -> Self {
        Self {
            transaction_column: Some(name.into()),
            ..Self::default()
        }
    }
}

/// Incremental field parser: the quote state machine behind both the
/// line-at-a-time [`split_line`] and the multi-line [`RecordReader`].
///
/// A quote opens a field only at the field's start; inside a quoted
/// field `""` is a literal quote. The parser is fed whole physical
/// lines; when a line ends with a quote still open the record
/// continues on the next line (the newline is part of the field).
struct FieldParser {
    delim: char,
    fields: Vec<String>,
    cur: String,
    quoted: bool,
}

impl FieldParser {
    fn new(delim: char) -> Self {
        Self {
            delim,
            fields: Vec::new(),
            cur: String::new(),
            quoted: false,
        }
    }

    /// Feed a chunk of text. `""` never spans feed boundaries because
    /// callers feed whole physical lines and join them with `feed_newline`.
    fn feed(&mut self, text: &str) {
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if self.quoted {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        self.cur.push('"');
                    } else {
                        self.quoted = false;
                    }
                } else {
                    self.cur.push(c);
                }
            } else if c == '"' && self.cur.is_empty() {
                self.quoted = true;
            } else if c == self.delim {
                self.fields.push(std::mem::take(&mut self.cur));
            } else {
                self.cur.push(c);
            }
        }
    }

    /// A record-internal newline (only reachable while quoted).
    fn feed_newline(&mut self) {
        self.cur.push('\n');
    }

    /// Close the record and take its fields.
    fn finish(&mut self) -> Vec<String> {
        self.fields.push(std::mem::take(&mut self.cur));
        std::mem::take(&mut self.fields)
    }
}

/// One logical CSV record: its parsed fields plus enough physical-file
/// context for the caller to reproduce the line-based reader's
/// behaviour (blank-line skipping, ragged-row line numbers).
pub(crate) struct Record {
    /// Parsed fields.
    pub fields: Vec<String>,
    /// True when the record is a single physical line of whitespace.
    pub blank: bool,
    /// 1-based physical line number where the record starts.
    pub line: usize,
}

/// Streaming reader yielding one logical record at a time.
///
/// A record is usually one physical line, but a quoted field may
/// contain embedded newlines, in which case the record spans several
/// lines. Line endings are normalized (`\r\n` and `\n` both
/// terminate a line) and a final record without a trailing newline is
/// yielded like any other. Both [`read_table`] and the chunked
/// ingest ([`crate::chunk::read_chunked`]) parse through this reader,
/// so the two paths cannot diverge.
pub(crate) struct RecordReader<R: BufRead> {
    reader: R,
    delim: char,
    /// 1-based number of the next physical line to read.
    next_line: usize,
    buf: String,
}

impl<R: BufRead> RecordReader<R> {
    pub(crate) fn new(reader: R, delim: char) -> Self {
        Self {
            reader,
            delim,
            next_line: 1,
            buf: String::new(),
        }
    }

    /// Read one physical line (without its terminator); `None` at EOF.
    fn next_line(&mut self) -> Result<Option<&str>, DataError> {
        self.buf.clear();
        let n = self.reader.read_line(&mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.next_line += 1;
        if self.buf.ends_with('\n') {
            self.buf.pop();
            if self.buf.ends_with('\r') {
                self.buf.pop();
            }
        }
        Ok(Some(&self.buf))
    }

    /// Next logical record, or `None` at end of input.
    pub(crate) fn next_record(&mut self) -> Result<Option<Record>, DataError> {
        let start = self.next_line;
        let delim = self.delim;
        let first = match self.next_line()? {
            Some(line) => line,
            None => return Ok(None),
        };
        let blank = first.trim().is_empty();
        let mut parser = FieldParser::new(delim);
        parser.feed(first);
        // An open quote at end of line means the newline is literal
        // field content and the record continues on the next line.
        while parser.quoted {
            match self.next_line()? {
                Some(line) => {
                    parser.feed_newline();
                    parser.feed(line);
                }
                // EOF inside an open quote: close the record as-is,
                // matching the line-based reader's lenient stance.
                None => break,
            }
        }
        Ok(Some(Record {
            fields: parser.finish(),
            blank,
            line: start,
        }))
    }
}

/// Quote a field when it contains the delimiter, a quote, a newline,
/// or leading whitespace that would be ambiguous.
fn quote_field(field: &str, delim: char) -> String {
    if field.contains(delim)
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r')
        || field.starts_with(' ')
    {
        let escaped = field.replace('"', "\"\"");
        format!("\"{escaped}\"")
    } else {
        field.to_owned()
    }
}

/// Build the schema for `names` from the options' type annotations.
pub(crate) fn schema_for(names: &[String], opts: &CsvOptions) -> Result<Schema, DataError> {
    if let Some(tx) = &opts.transaction_column {
        if !names.iter().any(|n| n == tx) {
            return Err(DataError::UnknownAttribute(tx.clone()));
        }
    }
    let col_kind = |name: &str| -> AttributeKind {
        if opts.transaction_column.as_deref() == Some(name) {
            AttributeKind::Transaction
        } else if opts.numeric_columns.iter().any(|n| n == name) {
            AttributeKind::Numeric
        } else {
            AttributeKind::Categorical
        }
    };
    let attributes: Vec<Attribute> = names
        .iter()
        .map(|n| Attribute::new(n.clone(), col_kind(n)))
        .collect();
    Schema::new(attributes)
}

/// Header names: the header record when present, 0-based indices as
/// decimal strings otherwise.
pub(crate) fn names_for(header: Option<Vec<String>>, width: usize) -> Vec<String> {
    match header {
        Some(names) => names,
        None => (0..width).map(|i| i.to_string()).collect(),
    }
}

/// Split a raw transaction field into trimmed, non-empty item strings.
pub(crate) fn split_items(field: &str, item_delimiter: char) -> Vec<&str> {
    field
        .split(item_delimiter)
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Read a dataset from any reader.
pub fn read_table<R: Read>(reader: R, opts: &CsvOptions) -> Result<RtTable, DataError> {
    let mut records = RecordReader::new(BufReader::new(reader), opts.delimiter);

    let header: Option<Vec<String>> = if opts.has_header {
        match records.next_record()? {
            Some(rec) => Some(rec.fields),
            None => return Err(DataError::EmptyInput),
        }
    } else {
        None
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut width = header.as_ref().map_or(0, Vec::len);
    while let Some(rec) = records.next_record()? {
        // A blank line is noise in a multi-column file, but in a
        // single-column file it is a record with one empty field
        // (e.g. an empty transaction).
        if rec.blank && width != 1 {
            continue;
        }
        if width == 0 {
            width = rec.fields.len();
        }
        if rec.fields.len() != width {
            return Err(DataError::RaggedRow {
                line: rec.line,
                found: rec.fields.len(),
                expected: width,
            });
        }
        rows.push(rec.fields);
    }
    if width == 0 {
        return Err(DataError::EmptyInput);
    }

    let names = names_for(header, width);
    let schema = schema_for(&names, opts)?;
    let tx_idx = schema.transaction_index();
    let rel_idx = schema.relational_indices();

    let mut table = RtTable::new(schema);
    for fields in rows {
        let rel: Vec<&str> = rel_idx.iter().map(|&i| fields[i].trim()).collect();
        let items: Vec<&str> = match tx_idx {
            Some(i) => split_items(&fields[i], opts.item_delimiter),
            None => Vec::new(),
        };
        table.push_row(&rel, &items)?;
    }
    Ok(table)
}

/// Read a dataset from a file path. Failures — I/O and parse alike —
/// are wrapped in [`DataError::InFile`] so the message names the file.
pub fn read_table_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<RtTable, DataError> {
    let path = path.as_ref();
    let in_file = |e: DataError| DataError::InFile {
        path: path.to_path_buf(),
        error: Box::new(e),
    };
    let file = std::fs::File::open(path).map_err(|e| in_file(e.into()))?;
    read_table(file, opts).map_err(in_file)
}

/// Write a dataset to any writer (Data Export Module).
pub fn write_table<W: Write>(
    table: &RtTable,
    writer: &mut W,
    opts: &CsvOptions,
) -> Result<(), DataError> {
    let schema = table.schema();
    let delim = opts.delimiter;
    if opts.has_header {
        let header: Vec<String> = schema
            .attributes()
            .iter()
            .map(|a| quote_field(&a.name, delim))
            .collect();
        writeln!(writer, "{}", header.join(&delim.to_string()))?;
    }
    let tx_idx = schema.transaction_index();
    for row in 0..table.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(schema.len());
        for (attr, a) in schema.attributes().iter().enumerate() {
            if Some(attr) == tx_idx {
                let items = table
                    .transaction_strs(row)
                    .join(&opts.item_delimiter.to_string());
                fields.push(quote_field(&items, delim));
            } else {
                let _ = a;
                fields.push(quote_field(table.value_str(row, attr), delim));
            }
        }
        writeln!(writer, "{}", fields.join(&delim.to_string()))?;
    }
    Ok(())
}

/// Write a dataset to a file path. Failures are wrapped in
/// [`DataError::InFile`] so the message names the file.
pub fn write_table_path(
    table: &RtTable,
    path: impl AsRef<Path>,
    opts: &CsvOptions,
) -> Result<(), DataError> {
    let path = path.as_ref();
    let in_file = |e: DataError| DataError::InFile {
        path: path.to_path_buf(),
        error: Box::new(e),
    };
    let mut file =
        std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| in_file(e.into()))?);
    write_table(table, &mut file, opts).map_err(in_file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Age,Edu,Items\n30,BSc,milk bread\n41,MSc,beer\n30,BSc,bread milk\n";

    fn rt_opts() -> CsvOptions {
        CsvOptions {
            numeric_columns: vec!["Age".into()],
            ..CsvOptions::with_transaction("Items")
        }
    }

    #[test]
    fn read_rt_dataset() {
        let t = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.schema().is_rt());
        assert_eq!(
            t.schema().attribute(0).unwrap().kind,
            AttributeKind::Numeric
        );
        assert_eq!(t.value_str(1, 1), "MSc");
        // items are stored in interned-id (first-seen) order
        assert_eq!(t.transaction_strs(0), vec!["milk", "bread"]);
    }

    #[test]
    fn roundtrip_preserves_content() {
        let t = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &rt_opts()).unwrap();
        let t2 = read_table(buf.as_slice(), &rt_opts()).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        for r in 0..t.n_rows() {
            assert_eq!(t.value_str(r, 0), t2.value_str(r, 0));
            assert_eq!(t.value_str(r, 1), t2.value_str(r, 1));
            assert_eq!(t.transaction_strs(r), t2.transaction_strs(r));
        }
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let src = "Name,Items\n\"Doe, John\",a b\n\"say \"\"hi\"\"\",c\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.value_str(0, 0), "Doe, John");
        assert_eq!(t.value_str(1, 0), "say \"hi\"");
        // write back and re-read
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &CsvOptions::with_transaction("Items")).unwrap();
        let t2 = read_table(buf.as_slice(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t2.value_str(0, 0), "Doe, John");
        assert_eq!(t2.value_str(1, 0), "say \"hi\"");
    }

    #[test]
    fn ragged_rows_are_reported_with_line_numbers() {
        let src = "A,B\n1,2\n1,2,3\n";
        let err = read_table(src.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::RaggedRow {
                line,
                found,
                expected,
            } => {
                assert_eq!((line, found, expected), (3, 3, 2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_table("".as_bytes(), &CsvOptions::default()),
            Err(DataError::EmptyInput)
        ));
        // header-only is a valid empty table
        let t = read_table("A,B\n".as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn headerless_input_uses_index_names() {
        let opts = CsvOptions {
            has_header: false,
            transaction_column: Some("1".into()),
            ..CsvOptions::default()
        };
        let t = read_table("x,a b\ny,c\n".as_bytes(), &opts).unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().name, "0");
        assert_eq!(t.transaction_strs(0), vec!["a", "b"]);
    }

    #[test]
    fn unknown_transaction_column_rejected() {
        let err = read_table(SAMPLE.as_bytes(), &CsvOptions::with_transaction("Nope")).unwrap_err();
        assert!(matches!(err, DataError::UnknownAttribute(_)));
    }

    #[test]
    fn blank_lines_skipped_in_multi_column_files() {
        let src = "A,B\n1,2\n\n3,4\n";
        let t = read_table(src.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn blank_line_is_a_record_in_single_column_files() {
        // an empty transaction row round-trips as a blank line
        let src = "Items\na b\n\nc\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.transaction(1).is_empty());
    }

    #[test]
    fn empty_transaction_field_means_empty_set() {
        let src = "Age,Items\n30,\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.transaction(0).len(), 0);
    }

    #[test]
    fn path_errors_name_the_file() {
        let err = read_table_path("/nonexistent/data.csv", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/data.csv"));
        assert!(matches!(err, DataError::InFile { .. }));
        // parse errors gain the same context
        let dir = std::env::temp_dir().join("secreta_csv_path_err");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("ragged.csv");
        std::fs::write(&p, "A,B\n1,2,3\n").unwrap();
        let err = read_table_path(&p, &CsvOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("ragged.csv") && msg.contains("line 2"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let lf = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        let crlf_src = SAMPLE.replace('\n', "\r\n");
        let crlf = read_table(crlf_src.as_bytes(), &rt_opts()).unwrap();
        assert_eq!(lf.n_rows(), crlf.n_rows());
        for r in 0..lf.n_rows() {
            assert_eq!(lf.value_str(r, 0), crlf.value_str(r, 0));
            assert_eq!(lf.value_str(r, 1), crlf.value_str(r, 1));
            assert_eq!(lf.transaction_strs(r), crlf.transaction_strs(r));
        }
    }

    #[test]
    fn final_row_without_trailing_newline() {
        let src = "Age,Edu,Items\n30,BSc,milk bread\n41,MSc,beer";
        let t = read_table(src.as_bytes(), &rt_opts()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value_str(1, 1), "MSc");
        assert_eq!(t.transaction_strs(1), vec!["beer"]);
    }

    #[test]
    fn quoted_field_with_embedded_newline() {
        let src = "Name,Items\n\"two\nlines\",a b\nplain,c\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value_str(0, 0), "two\nlines");
        assert_eq!(t.value_str(1, 0), "plain");
        // writing quotes the newline so the file round-trips
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &CsvOptions::with_transaction("Items")).unwrap();
        let t2 = read_table(buf.as_slice(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t2.value_str(0, 0), "two\nlines");
    }

    #[test]
    fn quoted_newline_with_crlf_endings() {
        // inside quotes the CRLF is normalized to a bare newline, the
        // same way the record separators are
        let src = "Name,Items\r\n\"two\r\nlines\",a\r\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.value_str(0, 0), "two\nlines");
    }

    #[test]
    fn ragged_row_line_numbers_count_physical_lines() {
        // the multi-line quoted record occupies lines 2-3, so the
        // ragged record is physical line 4
        let src = "A,B\n\"x\ny\",2\n1,2,3\n";
        let err = read_table(src.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::RaggedRow { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn eof_inside_open_quote_closes_the_record() {
        // the delimiter stays literal inside the unterminated quote, so
        // the record has one field and is reported as ragged — exactly
        // what the line-based reader did
        let src = "A,B\n\"unterminated,2";
        let err = read_table(src.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::RaggedRow { line, found, .. } => assert_eq!((line, found), (2, 1)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn alternative_delimiters() {
        let opts = CsvOptions {
            delimiter: ';',
            item_delimiter: '|',
            ..CsvOptions::with_transaction("Items")
        };
        let t = read_table("Age;Items\n30;a|b|c\n".as_bytes(), &opts).unwrap();
        assert_eq!(t.transaction(0).len(), 3);
    }
}
