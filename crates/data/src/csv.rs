//! CSV reading and writing in SECRETA's dataset format.
//!
//! The paper requires datasets "provided in a Comma-Separated Values
//! (CSV) format". Relational attributes occupy one field each; the
//! transaction attribute packs its items into a single field separated
//! by an intra-field delimiter (space by default). Fields containing
//! the delimiter may be double-quoted with `""` escaping.
//!
//! Which columns are relational/numeric/transaction is given by a
//! [`CsvOptions`] value, mirroring the type annotations the SECRETA
//! GUI collects when a file is loaded.

use crate::error::DataError;
use crate::schema::{Attribute, AttributeKind, Schema};
use crate::table::RtTable;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parsing/serialization options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Delimiter between items inside the transaction field
    /// (default space).
    pub item_delimiter: char,
    /// Whether the first line is a header of attribute names.
    pub has_header: bool,
    /// Name (when `has_header`) or 0-based index (otherwise, as a
    /// decimal string) of the transaction column, if any.
    pub transaction_column: Option<String>,
    /// Names/indices of columns to treat as numeric.
    pub numeric_columns: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            item_delimiter: ' ',
            has_header: true,
            transaction_column: None,
            numeric_columns: Vec::new(),
        }
    }
}

impl CsvOptions {
    /// Options for an RT-dataset whose transaction column is `name`.
    pub fn with_transaction(name: impl Into<String>) -> Self {
        Self {
            transaction_column: Some(name.into()),
            ..Self::default()
        }
    }
}

/// Split one CSV line into fields, honouring double quotes.
fn split_line(line: &str, delim: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            quoted = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

/// Quote a field when it contains the delimiter, a quote, or leading
/// whitespace that would be ambiguous.
fn quote_field(field: &str, delim: char) -> String {
    if field.contains(delim) || field.contains('"') || field.starts_with(' ') {
        let escaped = field.replace('"', "\"\"");
        format!("\"{escaped}\"")
    } else {
        field.to_owned()
    }
}

/// Read a dataset from any reader.
pub fn read_table<R: Read>(reader: R, opts: &CsvOptions) -> Result<RtTable, DataError> {
    let mut lines = BufReader::new(reader).lines();

    let header: Vec<String> = if opts.has_header {
        match lines.next() {
            Some(line) => split_line(&line?, opts.delimiter),
            None => return Err(DataError::EmptyInput),
        }
    } else {
        Vec::new()
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut width = if opts.has_header { header.len() } else { 0 };
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        // A blank line is noise in a multi-column file, but in a
        // single-column file it is a record with one empty field
        // (e.g. an empty transaction).
        if line.trim().is_empty() && width != 1 {
            continue;
        }
        let fields = split_line(&line, opts.delimiter);
        if width == 0 {
            width = fields.len();
        }
        if fields.len() != width {
            return Err(DataError::RaggedRow {
                line: lineno + 1 + usize::from(opts.has_header),
                found: fields.len(),
                expected: width,
            });
        }
        rows.push(fields);
    }
    if width == 0 {
        return Err(DataError::EmptyInput);
    }

    let names: Vec<String> = if opts.has_header {
        header
    } else {
        (0..width).map(|i| i.to_string()).collect()
    };

    let col_kind = |name: &str| -> AttributeKind {
        if opts.transaction_column.as_deref() == Some(name) {
            AttributeKind::Transaction
        } else if opts.numeric_columns.iter().any(|n| n == name) {
            AttributeKind::Numeric
        } else {
            AttributeKind::Categorical
        }
    };

    if let Some(tx) = &opts.transaction_column {
        if !names.iter().any(|n| n == tx) {
            return Err(DataError::UnknownAttribute(tx.clone()));
        }
    }

    let attributes: Vec<Attribute> = names
        .iter()
        .map(|n| Attribute::new(n.clone(), col_kind(n)))
        .collect();
    let schema = Schema::new(attributes)?;
    let tx_idx = schema.transaction_index();
    let rel_idx = schema.relational_indices();

    let mut table = RtTable::new(schema);
    for fields in rows {
        let rel: Vec<&str> = rel_idx.iter().map(|&i| fields[i].trim()).collect();
        let items: Vec<&str> = match tx_idx {
            Some(i) => fields[i]
                .split(opts.item_delimiter)
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect(),
            None => Vec::new(),
        };
        table.push_row(&rel, &items)?;
    }
    Ok(table)
}

/// Read a dataset from a file path. Failures — I/O and parse alike —
/// are wrapped in [`DataError::InFile`] so the message names the file.
pub fn read_table_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<RtTable, DataError> {
    let path = path.as_ref();
    let in_file = |e: DataError| DataError::InFile {
        path: path.to_path_buf(),
        error: Box::new(e),
    };
    let file = std::fs::File::open(path).map_err(|e| in_file(e.into()))?;
    read_table(file, opts).map_err(in_file)
}

/// Write a dataset to any writer (Data Export Module).
pub fn write_table<W: Write>(
    table: &RtTable,
    writer: &mut W,
    opts: &CsvOptions,
) -> Result<(), DataError> {
    let schema = table.schema();
    let delim = opts.delimiter;
    if opts.has_header {
        let header: Vec<String> = schema
            .attributes()
            .iter()
            .map(|a| quote_field(&a.name, delim))
            .collect();
        writeln!(writer, "{}", header.join(&delim.to_string()))?;
    }
    let tx_idx = schema.transaction_index();
    for row in 0..table.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(schema.len());
        for (attr, a) in schema.attributes().iter().enumerate() {
            if Some(attr) == tx_idx {
                let items = table
                    .transaction_strs(row)
                    .join(&opts.item_delimiter.to_string());
                fields.push(quote_field(&items, delim));
            } else {
                let _ = a;
                fields.push(quote_field(table.value_str(row, attr), delim));
            }
        }
        writeln!(writer, "{}", fields.join(&delim.to_string()))?;
    }
    Ok(())
}

/// Write a dataset to a file path. Failures are wrapped in
/// [`DataError::InFile`] so the message names the file.
pub fn write_table_path(
    table: &RtTable,
    path: impl AsRef<Path>,
    opts: &CsvOptions,
) -> Result<(), DataError> {
    let path = path.as_ref();
    let in_file = |e: DataError| DataError::InFile {
        path: path.to_path_buf(),
        error: Box::new(e),
    };
    let mut file =
        std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| in_file(e.into()))?);
    write_table(table, &mut file, opts).map_err(in_file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Age,Edu,Items\n30,BSc,milk bread\n41,MSc,beer\n30,BSc,bread milk\n";

    fn rt_opts() -> CsvOptions {
        CsvOptions {
            numeric_columns: vec!["Age".into()],
            ..CsvOptions::with_transaction("Items")
        }
    }

    #[test]
    fn read_rt_dataset() {
        let t = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.schema().is_rt());
        assert_eq!(
            t.schema().attribute(0).unwrap().kind,
            AttributeKind::Numeric
        );
        assert_eq!(t.value_str(1, 1), "MSc");
        // items are stored in interned-id (first-seen) order
        assert_eq!(t.transaction_strs(0), vec!["milk", "bread"]);
    }

    #[test]
    fn roundtrip_preserves_content() {
        let t = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &rt_opts()).unwrap();
        let t2 = read_table(buf.as_slice(), &rt_opts()).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        for r in 0..t.n_rows() {
            assert_eq!(t.value_str(r, 0), t2.value_str(r, 0));
            assert_eq!(t.value_str(r, 1), t2.value_str(r, 1));
            assert_eq!(t.transaction_strs(r), t2.transaction_strs(r));
        }
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let src = "Name,Items\n\"Doe, John\",a b\n\"say \"\"hi\"\"\",c\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.value_str(0, 0), "Doe, John");
        assert_eq!(t.value_str(1, 0), "say \"hi\"");
        // write back and re-read
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &CsvOptions::with_transaction("Items")).unwrap();
        let t2 = read_table(buf.as_slice(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t2.value_str(0, 0), "Doe, John");
        assert_eq!(t2.value_str(1, 0), "say \"hi\"");
    }

    #[test]
    fn ragged_rows_are_reported_with_line_numbers() {
        let src = "A,B\n1,2\n1,2,3\n";
        let err = read_table(src.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::RaggedRow {
                line,
                found,
                expected,
            } => {
                assert_eq!((line, found, expected), (3, 3, 2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_table("".as_bytes(), &CsvOptions::default()),
            Err(DataError::EmptyInput)
        ));
        // header-only is a valid empty table
        let t = read_table("A,B\n".as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn headerless_input_uses_index_names() {
        let opts = CsvOptions {
            has_header: false,
            transaction_column: Some("1".into()),
            ..CsvOptions::default()
        };
        let t = read_table("x,a b\ny,c\n".as_bytes(), &opts).unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().name, "0");
        assert_eq!(t.transaction_strs(0), vec!["a", "b"]);
    }

    #[test]
    fn unknown_transaction_column_rejected() {
        let err = read_table(SAMPLE.as_bytes(), &CsvOptions::with_transaction("Nope")).unwrap_err();
        assert!(matches!(err, DataError::UnknownAttribute(_)));
    }

    #[test]
    fn blank_lines_skipped_in_multi_column_files() {
        let src = "A,B\n1,2\n\n3,4\n";
        let t = read_table(src.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn blank_line_is_a_record_in_single_column_files() {
        // an empty transaction row round-trips as a blank line
        let src = "Items\na b\n\nc\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.transaction(1).is_empty());
    }

    #[test]
    fn empty_transaction_field_means_empty_set() {
        let src = "Age,Items\n30,\n";
        let t = read_table(src.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
        assert_eq!(t.transaction(0).len(), 0);
    }

    #[test]
    fn path_errors_name_the_file() {
        let err = read_table_path("/nonexistent/data.csv", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/data.csv"));
        assert!(matches!(err, DataError::InFile { .. }));
        // parse errors gain the same context
        let dir = std::env::temp_dir().join("secreta_csv_path_err");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("ragged.csv");
        std::fs::write(&p, "A,B\n1,2,3\n").unwrap();
        let err = read_table_path(&p, &CsvOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("ragged.csv") && msg.contains("line 2"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alternative_delimiters() {
        let opts = CsvOptions {
            delimiter: ';',
            item_delimiter: '|',
            ..CsvOptions::with_transaction("Items")
        };
        let t = read_table("Age;Items\n30;a|b|c\n".as_bytes(), &opts).unwrap();
        assert_eq!(t.transaction(0).len(), 3);
    }
}
