//! Interned identifiers for relational values and transaction items.
//!
//! Every relational attribute owns a [`ValuePool`] mapping its textual
//! domain values to dense `u32` ids; the transaction attribute owns one
//! pool for its item universe. Algorithms operate exclusively on ids —
//! strings are resolved only when rendering or exporting.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Interned id of a relational attribute value within its attribute's
/// [`ValuePool`]. Ids are dense: `0..pool.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(pub u32);

/// Interned id of a transaction item within the dataset's item pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ValueId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A string interner assigning dense `u32` ids in first-seen order.
///
/// Used both per relational attribute (domain values) and for the
/// transaction item universe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValuePool {
    values: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, u32>,
}

impl ValuePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `value`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), id);
        id
    }

    /// Id of `value` if already interned.
    pub fn get(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Textual form of `id`. Panics on out-of-range ids, which indicate
    /// a pool/table mismatch bug rather than bad user input.
    pub fn resolve(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    /// Textual form of `id`, or `None` when out of range.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.values.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }

    /// Deterministic estimate of the pool's heap footprint in bytes.
    ///
    /// Each interned value is stored twice (the dense vector and the
    /// reverse index key) plus fixed per-entry overhead for the two
    /// containers; the estimate charges `2 * len + 64` per value so
    /// memory-budget accounting is reproducible across runs and
    /// platforms, unlike allocator-reported numbers.
    pub fn estimated_bytes(&self) -> u64 {
        self.values.iter().map(|v| 2 * v.len() as u64 + 64).sum()
    }

    /// Rebuild the reverse index after deserialization (the hash index
    /// is skipped by serde).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
    }

    /// Rename the value behind `id`. Fails if `new` is already interned
    /// under a different id (the pool must stay a bijection).
    pub fn rename(&mut self, id: u32, new: &str) -> Result<(), crate::DataError> {
        match self.index.get(new) {
            Some(&other) if other != id => {
                return Err(crate::DataError::Invalid(format!(
                    "value {new:?} already exists in this attribute's domain"
                )))
            }
            _ => {}
        }
        let old = self.values[id as usize].clone();
        self.index.remove(&old);
        self.values[id as usize] = new.to_owned();
        self.index.insert(new.to_owned(), id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut p = ValuePool::new();
        let a = p.intern("alpha");
        let b = p.intern("beta");
        let a2 = p.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(a), "alpha");
        assert_eq!(p.get("beta"), Some(b));
        assert_eq!(p.get("gamma"), None);
    }

    #[test]
    fn iter_preserves_first_seen_order() {
        let mut p = ValuePool::new();
        for v in ["c", "a", "b", "a"] {
            p.intern(v);
        }
        let order: Vec<&str> = p.iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec!["c", "a", "b"]);
    }

    #[test]
    fn rename_updates_both_directions() {
        let mut p = ValuePool::new();
        let a = p.intern("old");
        p.rename(a, "new").unwrap();
        assert_eq!(p.resolve(a), "new");
        assert_eq!(p.get("new"), Some(a));
        assert_eq!(p.get("old"), None);
    }

    #[test]
    fn rename_to_self_is_allowed() {
        let mut p = ValuePool::new();
        let a = p.intern("x");
        p.rename(a, "x").unwrap();
        assert_eq!(p.resolve(a), "x");
    }

    #[test]
    fn rename_collision_is_rejected() {
        let mut p = ValuePool::new();
        let a = p.intern("a");
        let _b = p.intern("b");
        assert!(p.rename(a, "b").is_err());
        // pool unchanged on failure
        assert_eq!(p.resolve(a), "a");
    }

    #[test]
    fn try_resolve_handles_out_of_range() {
        let p = ValuePool::new();
        assert!(p.try_resolve(0).is_none());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut p = ValuePool::new();
        p.intern("x");
        p.intern("y");
        let mut clone = ValuePool {
            values: p.values.clone(),
            index: Default::default(),
        };
        assert_eq!(clone.get("x"), None); // index empty
        clone.rebuild_index();
        assert_eq!(clone.get("x"), Some(0));
        assert_eq!(clone.get("y"), Some(1));
    }
}
