//! # secreta-data
//!
//! Dataset substrate for SECRETA-rs, the Rust reproduction of the
//! EDBT 2014 demo paper *"SECRETA: A System for Evaluating and
//! Comparing RElational and Transaction Anonymization algorithms"*.
//!
//! This crate models the *RT-datasets* the paper operates on: tables
//! whose records combine **relational attributes** (single-valued,
//! e.g. an individual's year of birth) and an optional **transaction
//! attribute** (set-valued, e.g. the individual's purchased items).
//!
//! It provides:
//!
//! * [`RtTable`] — a column-oriented table with per-attribute value
//!   interning and a CSR-encoded transaction column,
//! * CSV reading/writing in the paper's input format ([`csv`]),
//! * the Dataset Editor operations of the SECRETA GUI ([`edit`]),
//! * attribute statistics and histograms ([`stats`]) backing the
//!   visualizations of the paper's Figure 2,
//! * a fast integer-keyed hash map ([`hash`]) used throughout the
//!   workspace for support counting and equivalence-class grouping.
//!
//! Strings appear only at the I/O boundary; all algorithm-facing APIs
//! speak interned [`ValueId`]/[`ItemId`] integers.

pub mod chunk;
pub mod csv;
pub mod edit;
pub mod error;
pub mod hash;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use chunk::{ChunkStats, ChunkedTable, MemoryBudget, RowChunk};
pub use csv::CsvOptions;
pub use error::DataError;
pub use schema::{Attribute, AttributeKind, Schema};
pub use stats::{AttributeSummary, Histogram};
pub use table::{RowRef, RtTable, TxChunk};
pub use value::{ItemId, ValueId, ValuePool};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
