//! Attribute statistics and histograms.
//!
//! Backs the data visualizations of the paper's Figure 2 ("histograms
//! of the frequency of values in any attribute") and the summary panel
//! of the Dataset Editor. The same [`Histogram`] type later carries
//! generalized-value frequencies (Figure 3(c)) and anonymized item
//! frequencies (Figure 3(d)).

use crate::table::RtTable;
use serde::{Deserialize, Serialize};

/// A labelled frequency histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// What is being counted (attribute name, typically).
    pub title: String,
    /// Bucket labels.
    pub labels: Vec<String>,
    /// Bucket counts, parallel to `labels`.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total mass.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Relative frequency of bucket `i`.
    pub fn frequency(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Sort buckets by descending count (stable on label for ties) and
    /// keep the `k` heaviest; the rest are merged into an `(other)`
    /// bucket. Used by the plotting module for wide domains.
    pub fn top_k(&self, k: usize) -> Histogram {
        let mut order: Vec<usize> = (0..self.labels.len()).collect();
        order.sort_by(|&a, &b| {
            self.counts[b]
                .cmp(&self.counts[a])
                .then_with(|| self.labels[a].cmp(&self.labels[b]))
        });
        let mut labels = Vec::new();
        let mut counts = Vec::new();
        let mut other = 0u64;
        for (rank, &i) in order.iter().enumerate() {
            if rank < k {
                labels.push(self.labels[i].clone());
                counts.push(self.counts[i]);
            } else {
                other += self.counts[i];
            }
        }
        if other > 0 {
            labels.push("(other)".to_owned());
            counts.push(other);
        }
        Histogram {
            title: self.title.clone(),
            labels,
            counts,
        }
    }
}

/// Summary statistics of one attribute (Dataset Editor panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeSummary {
    /// Attribute name.
    pub name: String,
    /// Number of distinct values (or items).
    pub distinct: usize,
    /// Records with a value (always `n_rows` for relational columns;
    /// non-empty transactions for the transaction attribute).
    pub populated: usize,
    /// Minimum, when the attribute parses as numeric.
    pub min: Option<f64>,
    /// Maximum, when the attribute parses as numeric.
    pub max: Option<f64>,
    /// Mean, when the attribute parses as numeric.
    pub mean: Option<f64>,
}

/// Histogram of a relational attribute's values.
///
/// Buckets follow the pool's first-seen order; callers wanting
/// rank-ordered output use [`Histogram::top_k`].
pub fn relational_histogram(table: &RtTable, attr: usize) -> Histogram {
    let pool = table.pool(attr);
    let mut counts = vec![0u64; pool.len()];
    for &v in table.column(attr) {
        counts[v.index()] += 1;
    }
    Histogram {
        title: table
            .schema()
            .attribute(attr)
            .map(|a| a.name.clone())
            .unwrap_or_default(),
        labels: pool.iter().map(|(_, s)| s.to_owned()).collect(),
        counts,
    }
}

/// Histogram of transaction item supports (number of transactions
/// containing each item).
pub fn item_histogram(table: &RtTable) -> Histogram {
    let pool = match table.item_pool() {
        Some(p) => p,
        None => {
            return Histogram {
                title: String::new(),
                labels: Vec::new(),
                counts: Vec::new(),
            }
        }
    };
    let mut counts = vec![0u64; pool.len()];
    for row in 0..table.n_rows() {
        for &it in table.transaction(row) {
            counts[it.index()] += 1;
        }
    }
    let title = table
        .schema()
        .transaction_index()
        .and_then(|i| table.schema().attribute(i))
        .map(|a| a.name.clone())
        .unwrap_or_default();
    Histogram {
        title,
        labels: pool.iter().map(|(_, s)| s.to_owned()).collect(),
        counts,
    }
}

/// Raw per-item support counts indexed by `ItemId`.
pub fn item_supports(table: &RtTable) -> Vec<u64> {
    let mut counts = vec![0u64; table.item_universe()];
    for row in 0..table.n_rows() {
        for &it in table.transaction(row) {
            counts[it.index()] += 1;
        }
    }
    counts
}

/// Summaries for every attribute of the table.
pub fn summarize(table: &RtTable) -> Vec<AttributeSummary> {
    let schema = table.schema();
    let tx_idx = schema.transaction_index();
    schema
        .attributes()
        .iter()
        .enumerate()
        .map(|(attr, a)| {
            if Some(attr) == tx_idx {
                let populated = (0..table.n_rows())
                    .filter(|&r| !table.transaction(r).is_empty())
                    .count();
                AttributeSummary {
                    name: a.name.clone(),
                    distinct: table.item_universe(),
                    populated,
                    min: None,
                    max: None,
                    mean: None,
                }
            } else {
                let column = table.column(attr);
                let pool = table.pool(attr);
                let nums: Vec<f64> = column
                    .iter()
                    .filter_map(|v| pool.resolve(v.0).parse::<f64>().ok())
                    .collect();
                let numeric = !nums.is_empty() && nums.len() == column.len();
                let (min, max, mean) = if numeric {
                    let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    (Some(min), Some(max), Some(mean))
                } else {
                    (None, None, None)
                };
                AttributeSummary {
                    name: a.name.clone(),
                    distinct: pool.len(),
                    populated: column.len(),
                    min,
                    max,
                    mean,
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30", "BSc"], &["a", "b"]).unwrap();
        t.push_row(&["41", "MSc"], &["a"]).unwrap();
        t.push_row(&["30", "BSc"], &["a", "c"]).unwrap();
        t.push_row(&["50", "PhD"], &[]).unwrap();
        t
    }

    #[test]
    fn relational_histogram_counts_values() {
        let h = relational_histogram(&table(), 0);
        assert_eq!(h.title, "Age");
        assert_eq!(h.labels, vec!["30", "41", "50"]);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.frequency(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn item_histogram_counts_supports() {
        let h = item_histogram(&table());
        assert_eq!(h.title, "Items");
        assert_eq!(h.labels, vec!["a", "b", "c"]);
        assert_eq!(h.counts, vec![3, 1, 1]);
        assert_eq!(item_supports(&table()), vec![3, 1, 1]);
    }

    #[test]
    fn item_histogram_without_tx_attribute_is_empty() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["1"], &[]).unwrap();
        let h = item_histogram(&t);
        assert!(h.labels.is_empty());
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn top_k_merges_tail() {
        let h = Histogram {
            title: "t".into(),
            labels: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            counts: vec![10, 1, 7, 2],
        };
        let top = h.top_k(2);
        assert_eq!(top.labels, vec!["a", "c", "(other)"]);
        assert_eq!(top.counts, vec![10, 7, 3]);
        assert_eq!(top.total(), h.total());
    }

    #[test]
    fn top_k_with_k_larger_than_domain() {
        let h = relational_histogram(&table(), 1);
        let top = h.top_k(10);
        assert_eq!(top.labels.len(), 3);
        assert_eq!(top.total(), h.total());
    }

    #[test]
    fn summaries_cover_all_attribute_kinds() {
        let s = summarize(&table());
        assert_eq!(s.len(), 3);
        let age = &s[0];
        assert_eq!(age.distinct, 3);
        assert_eq!(age.min, Some(30.0));
        assert_eq!(age.max, Some(50.0));
        assert!((age.mean.unwrap() - 37.75).abs() < 1e-9);
        let edu = &s[1];
        assert_eq!(edu.distinct, 3);
        assert!(edu.min.is_none(), "categorical has no numeric summary");
        let items = &s[2];
        assert_eq!(items.distinct, 3);
        assert_eq!(items.populated, 3, "one record has an empty transaction");
    }

    #[test]
    fn frequency_of_empty_histogram_is_zero() {
        let h = Histogram {
            title: String::new(),
            labels: vec!["x".into()],
            counts: vec![0],
        };
        assert_eq!(h.frequency(0), 0.0);
    }
}
