//! Chunked columnar ingest with an enforced memory budget.
//!
//! The in-memory [`RtTable`] path buffers every raw CSV field before
//! interning, so its transient footprint is dominated by strings the
//! table itself will never keep. This module streams records in
//! fixed-size **row chunks** instead: each chunk interns into small
//! per-chunk pools, and when the chunk seals its local symbols are
//! merged into the global pools and its ids rewritten. Because chunks
//! seal in order and a [`ValuePool`] assigns ids in first-seen order,
//! the merged pools and rewritten ids are *identical* to what
//! row-by-row global interning would have produced — materializing a
//! [`ChunkedTable`] via [`ChunkedTable::into_table`] yields a table
//! byte-identical to [`crate::csv::read_table`]'s.
//!
//! Every allocation the chunked path retains is charged against a
//! [`MemoryBudget`]. When the budget would be exceeded the ingest
//! fails with the typed [`DataError::BudgetExceeded`] instead of
//! letting the process grow until the OOM killer takes it; callers
//! (the CLI's degraded path) turn that into exit code 3.

use crate::csv::{names_for, schema_for, split_items, CsvOptions, RecordReader};
use crate::error::DataError;
use crate::schema::Schema;
use crate::table::{RtTable, TxChunk};
use crate::value::{ItemId, ValueId, ValuePool};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default rows per chunk when neither the caller nor the
/// `SECRETA_CHUNK_ROWS` environment variable says otherwise.
pub const DEFAULT_CHUNK_ROWS: usize = 8192;

/// 0 = unset; resolved lazily against the environment.
static CHUNK_ROWS: AtomicUsize = AtomicUsize::new(0);

/// Process-global chunk size in rows, resolved in precedence order:
/// [`set_chunk_rows`] override, the `SECRETA_CHUNK_ROWS` environment
/// variable, then [`DEFAULT_CHUNK_ROWS`].
pub fn chunk_rows() -> usize {
    let v = CHUNK_ROWS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let resolved = std::env::var("SECRETA_CHUNK_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHUNK_ROWS);
    CHUNK_ROWS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Override the process-global chunk size (0 is coerced to 1).
pub fn set_chunk_rows(rows: usize) {
    CHUNK_ROWS.store(rows.max(1), Ordering::Relaxed);
}

/// An accounted memory budget. Charges are deterministic estimates
/// (see [`ValuePool::estimated_bytes`] for the symbol formula; ids
/// cost 4 bytes each), so a run that exceeds its budget does so
/// reproducibly — unlike RSS, which depends on the allocator and on
/// what else the process has done.
#[derive(Debug, Clone, Default)]
pub struct MemoryBudget {
    limit: Option<u64>,
    charged: u64,
    peak: u64,
}

impl MemoryBudget {
    /// No limit; accounting still runs so peak usage is reported.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget of `limit` bytes.
    pub fn bytes(limit: u64) -> Self {
        Self {
            limit: Some(limit),
            charged: 0,
            peak: 0,
        }
    }

    /// Budget of `mb` megabytes (the CLI's `--memory-budget` unit).
    pub fn megabytes(mb: u64) -> Self {
        Self::bytes(mb.saturating_mul(1024 * 1024))
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Currently charged bytes.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Charge `bytes`, failing with [`DataError::BudgetExceeded`] when
    /// the limit would be crossed.
    pub(crate) fn charge(&mut self, bytes: u64) -> Result<(), DataError> {
        let needed = self.charged.saturating_add(bytes);
        if let Some(limit) = self.limit {
            if needed > limit {
                return Err(DataError::BudgetExceeded {
                    budget_bytes: limit,
                    needed_bytes: needed,
                });
            }
        }
        self.charged = needed;
        self.peak = self.peak.max(needed);
        Ok(())
    }

    /// Return `bytes` to the budget (freed allocation).
    pub(crate) fn release(&mut self, bytes: u64) {
        self.charged = self.charged.saturating_sub(bytes);
    }
}

/// Counters describing one chunked ingest; flushed to the obsv layer
/// as the `chunk/*` and `budget/*` counter families.
#[derive(Debug, Clone, Default)]
pub struct ChunkStats {
    /// Sealed chunks.
    pub chunks: u64,
    /// Rows ingested.
    pub rows: u64,
    /// Symbols interned into per-chunk local pools (sum over chunks).
    pub local_symbols: u64,
    /// Symbols newly added to the global pools at chunk merges.
    pub merged_symbols: u64,
    /// Local→global id rewrites performed at chunk seals.
    pub remapped_ids: u64,
    /// High-water mark of accounted bytes.
    pub peak_accounted_bytes: u64,
    /// The enforced budget, if one was set.
    pub budget_bytes: Option<u64>,
}

/// One sealed chunk of consecutive rows, holding globally-interned
/// ids: relational columns in relational-attribute order and the
/// transaction column as a chunk-local CSR pair.
#[derive(Debug, Clone)]
pub struct RowChunk {
    start: usize,
    /// One column per *relational* attribute (schema order).
    columns: Vec<Vec<ValueId>>,
    /// Chunk-local CSR offsets (`n_rows + 1` entries, first 0); empty
    /// when the schema has no transaction attribute.
    tx_offsets: Vec<u32>,
    tx_items: Vec<ItemId>,
    n_rows: usize,
}

impl RowChunk {
    /// Global index of the chunk's first row.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column of the `rel_pos`-th relational attribute.
    pub fn column(&self, rel_pos: usize) -> &[ValueId] {
        &self.columns[rel_pos]
    }

    /// Transaction items of the chunk-local row `local` (sorted,
    /// duplicate-free, global ids).
    #[inline]
    pub fn transaction(&self, local: usize) -> &[ItemId] {
        if self.tx_offsets.is_empty() {
            return &[];
        }
        let lo = self.tx_offsets[local] as usize;
        let hi = self.tx_offsets[local + 1] as usize;
        &self.tx_items[lo..hi]
    }

    /// View the chunk's transactions as a [`TxChunk`] — the same
    /// block shape [`crate::RtTable::tx_chunks`] yields, so kernel
    /// builds that walk transaction blocks accept sealed chunks and
    /// materialized tables interchangeably. The chunk-local CSR
    /// offsets index the chunk's own item buffer directly.
    pub fn as_tx_chunk(&self) -> TxChunk<'_> {
        TxChunk::from_raw(self.start, self.n_rows, &self.tx_offsets, &self.tx_items)
    }

    /// Accounted bytes of the chunk's id buffers.
    fn accounted_bytes(&self) -> u64 {
        let cols: u64 = self.columns.iter().map(|c| 4 * c.len() as u64).sum();
        cols + 4 * (self.tx_offsets.len() as u64 + self.tx_items.len() as u64)
    }
}

/// How rows are being pushed; the two modes cannot be mixed because
/// string pushes carry chunk-local ids until the seal while id pushes
/// carry global ids immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushMode {
    /// [`ChunkedTable::push_row`]: textual fields, per-chunk interning.
    Strs,
    /// [`ChunkedTable::push_row_ids`]: pre-interned global ids.
    Ids,
}

/// The open (not yet sealed) chunk.
#[derive(Debug)]
struct ChunkBuilder {
    start: usize,
    /// One small interner per attribute (parallel to the table's
    /// global pools); unused in [`PushMode::Ids`].
    local_pools: Vec<ValuePool>,
    columns: Vec<Vec<ValueId>>,
    tx_offsets: Vec<u32>,
    tx_items: Vec<ItemId>,
    n_rows: usize,
}

impl ChunkBuilder {
    fn new(start: usize, n_attrs: usize, n_rel: usize, has_tx: bool) -> Self {
        Self {
            start,
            local_pools: vec![ValuePool::new(); n_attrs],
            columns: vec![Vec::new(); n_rel],
            tx_offsets: if has_tx { vec![0] } else { Vec::new() },
            tx_items: Vec::new(),
            n_rows: 0,
        }
    }
}

/// A dataset ingested chunk-by-chunk under a [`MemoryBudget`].
///
/// The table holds the global interned pools plus a vector of sealed
/// [`RowChunk`]s; [`ChunkedTable::into_table`] drains the chunks into
/// an [`RtTable`] that is byte-identical to what the in-memory reader
/// would have produced from the same input.
#[derive(Debug)]
pub struct ChunkedTable {
    schema: Schema,
    pools: Vec<ValuePool>,
    chunks: Vec<RowChunk>,
    chunk_rows: usize,
    n_rows: usize,
    stats: ChunkStats,
    budget: MemoryBudget,
    open: Option<ChunkBuilder>,
    mode: Option<PushMode>,
}

impl ChunkedTable {
    /// Empty chunked table over `schema`; chunks seal every
    /// `chunk_rows` rows (0 is coerced to 1).
    pub fn new(schema: Schema, chunk_rows: usize, budget: MemoryBudget) -> Self {
        Self {
            schema,
            pools: Vec::new(),
            chunks: Vec::new(),
            chunk_rows: chunk_rows.max(1),
            n_rows: 0,
            stats: ChunkStats::default(),
            budget,
            open: None,
            mode: None,
        }
        .init_pools()
    }

    fn init_pools(mut self) -> Self {
        self.pools = vec![ValuePool::new(); self.schema.len()];
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows pushed so far (sealed or open).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Global value pool (domain) of attribute `attr`.
    pub fn pool(&self, attr: usize) -> &ValuePool {
        &self.pools[attr]
    }

    /// Global item pool of the transaction attribute, if present.
    pub fn item_pool(&self) -> Option<&ValuePool> {
        self.schema.transaction_index().map(|i| &self.pools[i])
    }

    /// Number of distinct items seen so far.
    pub fn item_universe(&self) -> usize {
        self.item_pool().map_or(0, ValuePool::len)
    }

    /// Sealed chunks. Call [`ChunkedTable::finish`] first if rows may
    /// still be sitting in the open chunk.
    pub fn chunks(&self) -> &[RowChunk] {
        &self.chunks
    }

    /// Ingest counters, with the budget figures filled in.
    pub fn stats(&self) -> ChunkStats {
        let mut s = self.stats.clone();
        s.peak_accounted_bytes = self.budget.peak();
        s.budget_bytes = self.budget.limit();
        s
    }

    /// The budget and its accounting state.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Currently accounted bytes.
    pub fn accounted_bytes(&self) -> u64 {
        self.budget.charged()
    }

    /// Transaction of a row in a *sealed* chunk (sorted, duplicate
    /// free, global ids). Panics on rows still in the open chunk —
    /// call [`ChunkedTable::finish`] first.
    #[inline]
    pub fn transaction(&self, row: usize) -> &[ItemId] {
        let chunk = &self.chunks[row / self.chunk_rows];
        chunk.transaction(row % self.chunk_rows)
    }

    fn set_mode(&mut self, mode: PushMode) -> Result<(), DataError> {
        match self.mode {
            None => {
                self.mode = Some(mode);
                Ok(())
            }
            Some(m) if m == mode => Ok(()),
            Some(_) => Err(DataError::Invalid(
                "cannot mix push_row and push_row_ids on one ChunkedTable".into(),
            )),
        }
    }

    /// Append a record given textual relational values (in relational
    /// attribute order) and textual transaction items. Values are
    /// interned into the open chunk's local pools; global merge
    /// happens when the chunk seals.
    pub fn push_row(&mut self, rel_values: &[&str], items: &[&str]) -> Result<(), DataError> {
        self.set_mode(PushMode::Strs)?;
        let rel_idx = self.schema.relational_indices();
        if rel_values.len() != rel_idx.len() {
            return Err(DataError::Invalid(format!(
                "expected {} relational values, got {}",
                rel_idx.len(),
                rel_values.len()
            )));
        }
        let tx = self.schema.transaction_index();
        if tx.is_none() && !items.is_empty() {
            return Err(DataError::Invalid(
                "schema has no transaction attribute but items were supplied".into(),
            ));
        }

        // Intern into the open chunk's local pools to learn the cost
        // (charging each *new* local symbol plus the id storage), and
        // only commit the row once the budget admits it.
        let mut b = self.open.take().unwrap_or_else(|| {
            ChunkBuilder::new(self.n_rows, self.schema.len(), rel_idx.len(), tx.is_some())
        });

        let mut new_symbol_bytes = 0u64;
        let mut rel_ids = Vec::with_capacity(rel_idx.len());
        for (pos, &attr) in rel_idx.iter().enumerate() {
            let pool = &mut b.local_pools[attr];
            let before = pool.len();
            let id = pool.intern(rel_values[pos]);
            if pool.len() > before {
                new_symbol_bytes += 2 * rel_values[pos].len() as u64 + 64;
            }
            rel_ids.push(ValueId(id));
        }
        let mut tx_ids: Vec<ItemId> = Vec::new();
        if let Some(txi) = tx {
            let pool = &mut b.local_pools[txi];
            for s in items {
                let before = pool.len();
                let id = pool.intern(s);
                if pool.len() > before {
                    new_symbol_bytes += 2 * s.len() as u64 + 64;
                }
                tx_ids.push(ItemId(id));
            }
            tx_ids.sort_unstable();
            tx_ids.dedup();
        }
        let id_bytes =
            4 * rel_ids.len() as u64 + 4 * (tx_ids.len() as u64 + u64::from(tx.is_some()));
        if let Err(e) = self.budget.charge(new_symbol_bytes + id_bytes) {
            self.open = Some(b);
            return Err(e);
        }

        for (pos, id) in rel_ids.into_iter().enumerate() {
            b.columns[pos].push(id);
        }
        if tx.is_some() {
            b.tx_items.extend_from_slice(&tx_ids);
            b.tx_offsets.push(b.tx_items.len() as u32);
        }
        b.n_rows += 1;
        let full = b.n_rows >= self.chunk_rows;
        self.open = Some(b);
        self.n_rows += 1;
        self.stats.rows += 1;
        if full {
            self.seal()?;
        }
        Ok(())
    }

    /// Intern a value into the *global* pool of relational attribute
    /// `attr`. Generators pre-populate domains this way before
    /// pushing with [`ChunkedTable::push_row_ids`].
    pub fn intern_value(&mut self, attr: usize, value: &str) -> Result<ValueId, DataError> {
        let a = self
            .schema
            .attribute(attr)
            .ok_or(DataError::AttributeIndex(attr))?;
        if !a.kind.is_relational() {
            return Err(DataError::NotRelational(a.name.clone()));
        }
        let before = self.pools[attr].len();
        let id = self.pools[attr].intern(value);
        if self.pools[attr].len() > before {
            self.budget.charge(2 * value.len() as u64 + 64)?;
        }
        Ok(ValueId(id))
    }

    /// Intern an item into the global item pool.
    pub fn intern_item(&mut self, item: &str) -> Result<ItemId, DataError> {
        let tx = self
            .schema
            .transaction_index()
            .ok_or_else(|| DataError::Invalid("schema has no transaction attribute".into()))?;
        let before = self.pools[tx].len();
        let id = self.pools[tx].intern(item);
        if self.pools[tx].len() > before {
            self.budget.charge(2 * item.len() as u64 + 64)?;
        }
        Ok(ItemId(id))
    }

    /// Append a record from already-interned *global* ids (generator
    /// path); every id must exist in the corresponding global pool.
    pub fn push_row_ids(
        &mut self,
        rel_values: &[ValueId],
        items: &[ItemId],
    ) -> Result<(), DataError> {
        self.set_mode(PushMode::Ids)?;
        let rel_idx = self.schema.relational_indices();
        if rel_values.len() != rel_idx.len() {
            return Err(DataError::Invalid(format!(
                "expected {} relational values, got {}",
                rel_idx.len(),
                rel_values.len()
            )));
        }
        for (pos, &attr) in rel_idx.iter().enumerate() {
            if rel_values[pos].index() >= self.pools[attr].len() {
                return Err(DataError::Invalid(format!(
                    "value id {} not interned in attribute {}",
                    rel_values[pos],
                    self.schema.attribute(attr).expect("attr in range").name
                )));
            }
        }
        let tx = self.schema.transaction_index();
        let mut ids = items.to_vec();
        match tx {
            Some(txi) => {
                let universe = self.pools[txi].len();
                ids.sort_unstable();
                ids.dedup();
                if ids.iter().any(|it| it.index() >= universe) {
                    return Err(DataError::Invalid("item id not interned".into()));
                }
            }
            None if !items.is_empty() => {
                return Err(DataError::Invalid(
                    "schema has no transaction attribute but items were supplied".into(),
                ));
            }
            None => {}
        }
        let id_bytes =
            4 * rel_values.len() as u64 + 4 * (ids.len() as u64 + u64::from(tx.is_some()));
        self.budget.charge(id_bytes)?;

        let mut b = self.open.take().unwrap_or_else(|| {
            ChunkBuilder::new(self.n_rows, self.schema.len(), rel_idx.len(), tx.is_some())
        });
        for (pos, &id) in rel_values.iter().enumerate() {
            b.columns[pos].push(id);
        }
        if tx.is_some() {
            b.tx_items.extend_from_slice(&ids);
            b.tx_offsets.push(b.tx_items.len() as u32);
        }
        b.n_rows += 1;
        let full = b.n_rows >= self.chunk_rows;
        self.open = Some(b);
        self.n_rows += 1;
        self.stats.rows += 1;
        if full {
            self.seal()?;
        }
        Ok(())
    }

    /// Seal the open chunk: merge its local pools into the global
    /// pools (in local-id order, which preserves global first-seen
    /// order) and rewrite its ids from local to global.
    fn seal(&mut self) -> Result<(), DataError> {
        let mut b = match self.open.take() {
            Some(b) if b.n_rows > 0 => b,
            _ => return Ok(()),
        };
        if self.mode == Some(PushMode::Strs) {
            let rel_idx = self.schema.relational_indices();
            let tx = self.schema.transaction_index();
            let mut local_symbols = 0u64;
            let mut scratch_bytes = 0u64;
            // merge each local pool, charging only globally-new symbols
            let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(self.pools.len());
            for (attr, local) in b.local_pools.iter().enumerate() {
                local_symbols += local.len() as u64;
                scratch_bytes += local.estimated_bytes();
                let global = &mut self.pools[attr];
                let mut remap = Vec::with_capacity(local.len());
                for (_, s) in local.iter() {
                    let before = global.len();
                    let gid = global.intern(s);
                    if global.len() > before {
                        self.budget.charge(2 * s.len() as u64 + 64)?;
                        self.stats.merged_symbols += 1;
                    }
                    remap.push(gid);
                }
                remaps.push(remap);
            }
            // rewrite relational columns
            for (pos, &attr) in rel_idx.iter().enumerate() {
                let remap = &remaps[attr];
                for v in &mut b.columns[pos] {
                    *v = ValueId(remap[v.0 as usize]);
                }
                self.stats.remapped_ids += b.columns[pos].len() as u64;
            }
            // rewrite transaction items, then restore per-row sort
            // order under the new (global) ids
            if let Some(txi) = tx {
                let remap = &remaps[txi];
                for it in &mut b.tx_items {
                    *it = ItemId(remap[it.0 as usize]);
                }
                self.stats.remapped_ids += b.tx_items.len() as u64;
                for w in b.tx_offsets.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    b.tx_items[lo..hi].sort_unstable();
                }
            }
            self.stats.local_symbols += local_symbols;
            // the local interner scratch is dropped with the builder
            self.budget.release(scratch_bytes);
        }
        self.stats.chunks += 1;
        self.chunks.push(RowChunk {
            start: b.start,
            columns: b.columns,
            tx_offsets: b.tx_offsets,
            tx_items: b.tx_items,
            n_rows: b.n_rows,
        });
        Ok(())
    }

    /// Seal the open chunk (if any); call after the last push and
    /// before reading chunks or materializing.
    pub fn finish(&mut self) -> Result<(), DataError> {
        self.seal()
    }

    /// Reclassify all-numeric categorical attributes as numeric (the
    /// single-pass replacement for the CLI's probe-and-reread type
    /// detection; same rule as [`crate::stats::summarize`]).
    pub fn reclassify_numeric(&mut self) {
        let tx_idx = self.schema.transaction_index();
        for attr in 0..self.schema.len() {
            if Some(attr) == tx_idx {
                continue;
            }
            let pool = &self.pools[attr];
            if self.n_rows > 0
                && !pool.is_empty()
                && pool.iter().all(|(_, v)| v.parse::<f64>().is_ok())
            {
                self.schema
                    .set_kind(attr, crate::schema::AttributeKind::Numeric);
            }
        }
    }

    /// Materialize the full [`RtTable`], draining chunks as their data
    /// is copied so the accounted peak stays near table-plus-one-chunk
    /// rather than double the table. The result is byte-identical to
    /// the in-memory reader's table for the same input.
    pub fn into_table(mut self) -> Result<RtTable, DataError> {
        self.finish()?;
        let rel_idx = self.schema.relational_indices();
        let has_tx = self.schema.transaction_index().is_some();
        let mut columns: Vec<Vec<ValueId>> = vec![Vec::new(); self.schema.len()];
        let mut tx_offsets: Vec<u32> = if has_tx { vec![0] } else { Vec::new() };
        let mut tx_items: Vec<ItemId> = Vec::new();
        for chunk in std::mem::take(&mut self.chunks) {
            let bytes = chunk.accounted_bytes();
            // the copy is transiently charged on top of the original
            self.budget.charge(bytes)?;
            for (pos, &attr) in rel_idx.iter().enumerate() {
                columns[attr].extend_from_slice(&chunk.columns[pos]);
            }
            if has_tx {
                let base = tx_items.len() as u32;
                tx_items.extend_from_slice(&chunk.tx_items);
                tx_offsets.extend(chunk.tx_offsets.iter().skip(1).map(|&o| o + base));
            }
            drop(chunk);
            self.budget.release(bytes);
        }
        self.stats.peak_accounted_bytes = self.budget.peak();
        self.stats.budget_bytes = self.budget.limit();
        Ok(RtTable::from_parts(
            self.schema,
            self.pools,
            columns,
            tx_offsets,
            tx_items,
            self.n_rows,
        ))
    }
}

/// Stream a dataset from any reader into a [`ChunkedTable`], sealing
/// a chunk every `chunk_rows` rows and charging every retained byte
/// against `budget`. Parsing goes through the same record reader as
/// [`crate::csv::read_table`], so CRLF endings,
/// quoted fields containing delimiters or newlines, and a final row
/// without a trailing newline all parse identically on both paths.
pub fn read_chunked<R: Read>(
    reader: R,
    opts: &CsvOptions,
    chunk_rows: usize,
    budget: MemoryBudget,
) -> Result<ChunkedTable, DataError> {
    let mut records = RecordReader::new(BufReader::new(reader), opts.delimiter);
    read_chunked_records(&mut records, opts, chunk_rows, budget)
}

fn read_chunked_records<R: BufRead>(
    records: &mut RecordReader<R>,
    opts: &CsvOptions,
    chunk_rows: usize,
    budget: MemoryBudget,
) -> Result<ChunkedTable, DataError> {
    let header: Option<Vec<String>> = if opts.has_header {
        match records.next_record()? {
            Some(rec) => Some(rec.fields),
            None => return Err(DataError::EmptyInput),
        }
    } else {
        None
    };

    let mut width = header.as_ref().map_or(0, Vec::len);
    let mut table: Option<ChunkedTable> = None;
    let mut budget = Some(budget);
    let mut rel_idx: Vec<usize> = Vec::new();
    let mut tx_idx: Option<usize> = None;

    if width > 0 {
        let names = names_for(header.clone(), width);
        let schema = schema_for(&names, opts)?;
        rel_idx = schema.relational_indices();
        tx_idx = schema.transaction_index();
        table = Some(ChunkedTable::new(
            schema,
            chunk_rows,
            budget.take().expect("budget unused"),
        ));
    }

    while let Some(rec) = records.next_record()? {
        if rec.blank && width != 1 {
            continue;
        }
        if width == 0 {
            width = rec.fields.len();
            let names = names_for(None, width);
            let schema = schema_for(&names, opts)?;
            rel_idx = schema.relational_indices();
            tx_idx = schema.transaction_index();
            table = Some(ChunkedTable::new(
                schema,
                chunk_rows,
                budget.take().expect("budget unused"),
            ));
        }
        if rec.fields.len() != width {
            return Err(DataError::RaggedRow {
                line: rec.line,
                found: rec.fields.len(),
                expected: width,
            });
        }
        let t = table.as_mut().expect("table built with width");
        let rel: Vec<&str> = rel_idx.iter().map(|&i| rec.fields[i].trim()).collect();
        let items: Vec<&str> = match tx_idx {
            Some(i) => split_items(&rec.fields[i], opts.item_delimiter),
            None => Vec::new(),
        };
        t.push_row(&rel, &items)?;
    }

    let mut t = table.ok_or(DataError::EmptyInput)?;
    t.finish()?;
    Ok(t)
}

/// [`read_chunked`] from a file path; failures are wrapped in
/// [`DataError::InFile`] so the message names the file.
pub fn read_chunked_path(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
    chunk_rows: usize,
    budget: MemoryBudget,
) -> Result<ChunkedTable, DataError> {
    let path = path.as_ref();
    let in_file = |e: DataError| DataError::InFile {
        path: path.to_path_buf(),
        error: Box::new(e),
    };
    let file = std::fs::File::open(path).map_err(|e| in_file(e.into()))?;
    read_chunked(file, opts, chunk_rows, budget).map_err(in_file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_table;
    use crate::schema::Attribute;

    const SAMPLE: &str = "Age,Edu,Items\n30,BSc,milk bread\n41,MSc,beer\n30,BSc,bread milk\n\
                          22,BSc,milk\n41,PhD,beer wine\n19,MSc,wine\n";

    fn rt_opts() -> CsvOptions {
        CsvOptions {
            numeric_columns: vec!["Age".into()],
            ..CsvOptions::with_transaction("Items")
        }
    }

    fn assert_tables_identical(a: &RtTable, b: &RtTable) {
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.schema().len(), b.schema().len());
        for attr in 0..a.schema().len() {
            assert_eq!(
                a.schema().attribute(attr).unwrap().kind,
                b.schema().attribute(attr).unwrap().kind
            );
            let (pa, pb) = (a.pool(attr), b.pool(attr));
            assert_eq!(
                pa.iter().collect::<Vec<_>>(),
                pb.iter().collect::<Vec<_>>(),
                "pool {attr} diverged"
            );
        }
        for row in 0..a.n_rows() {
            for &attr in &a.schema().relational_indices() {
                assert_eq!(a.value(row, attr), b.value(row, attr), "row {row}");
            }
            assert_eq!(a.transaction(row), b.transaction(row), "row {row} tx");
        }
    }

    #[test]
    fn chunked_matches_in_memory_at_every_chunk_size() {
        let reference = read_table(SAMPLE.as_bytes(), &rt_opts()).unwrap();
        for chunk_rows in [1, 2, 3, 4, 100] {
            let chunked = read_chunked(
                SAMPLE.as_bytes(),
                &rt_opts(),
                chunk_rows,
                MemoryBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(chunked.n_rows(), 6);
            let t = chunked.into_table().unwrap();
            assert_tables_identical(&reference, &t);
        }
    }

    #[test]
    fn chunked_handles_edge_case_csv_identically() {
        // CRLF, quoted delimiter, quoted newline, no trailing newline
        let src = "Name,Items\r\n\"Doe, John\",a b\r\n\"two\nlines\",c\r\nplain,a";
        let opts = CsvOptions::with_transaction("Items");
        let reference = read_table(src.as_bytes(), &opts).unwrap();
        assert_eq!(reference.n_rows(), 3);
        assert_eq!(reference.value_str(1, 0), "two\nlines");
        for chunk_rows in [1, 2, 64] {
            let t = read_chunked(src.as_bytes(), &opts, chunk_rows, MemoryBudget::unlimited())
                .unwrap()
                .into_table()
                .unwrap();
            assert_tables_identical(&reference, &t);
        }
    }

    #[test]
    fn transactions_sorted_by_global_ids_after_remap() {
        // "bread milk" in row 3 re-orders under global ids interned
        // from row 1; with chunk_rows=1 every row remaps
        let chunked =
            read_chunked(SAMPLE.as_bytes(), &rt_opts(), 1, MemoryBudget::unlimited()).unwrap();
        for row in 0..chunked.n_rows() {
            let tx = chunked.transaction(row);
            assert!(tx.windows(2).all(|w| w[0] < w[1]), "row {row} unsorted");
        }
    }

    #[test]
    fn stats_count_merges_and_remaps() {
        let chunked =
            read_chunked(SAMPLE.as_bytes(), &rt_opts(), 2, MemoryBudget::unlimited()).unwrap();
        let stats = chunked.stats();
        assert_eq!(stats.rows, 6);
        assert_eq!(stats.chunks, 3);
        assert!(stats.local_symbols >= stats.merged_symbols);
        // global pools hold exactly the merged symbols
        let global: u64 = (0..3).map(|a| chunked.pool(a).len() as u64).sum();
        assert_eq!(stats.merged_symbols, global);
        assert!(stats.peak_accounted_bytes > 0);
        assert_eq!(stats.budget_bytes, None);
    }

    #[test]
    fn budget_exceeded_is_typed_and_deterministic() {
        let needed_of =
            |budget| match read_chunked(SAMPLE.as_bytes(), &rt_opts(), 2, budget).unwrap_err() {
                DataError::BudgetExceeded {
                    budget_bytes,
                    needed_bytes,
                } => {
                    assert_eq!(budget_bytes, 64);
                    assert!(needed_bytes > 64);
                    needed_bytes
                }
                other => panic!("unexpected error {other:?}"),
            };
        // the same input and budget fail at the same accounted byte
        // count every time — accounting is deterministic, not
        // allocator-dependent
        let a = needed_of(MemoryBudget::bytes(64));
        let b = needed_of(MemoryBudget::bytes(64));
        assert_eq!(a, b);
    }

    #[test]
    fn generous_budget_admits_and_reports_peak() {
        let chunked = read_chunked(
            SAMPLE.as_bytes(),
            &rt_opts(),
            2,
            MemoryBudget::megabytes(16),
        )
        .unwrap();
        let stats = chunked.stats();
        assert_eq!(stats.budget_bytes, Some(16 * 1024 * 1024));
        assert!(stats.peak_accounted_bytes < 16 * 1024 * 1024);
        chunked.into_table().unwrap();
    }

    #[test]
    fn push_row_ids_generator_path() {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut c = ChunkedTable::new(schema.clone(), 2, MemoryBudget::unlimited());
        let v30 = c.intern_value(0, "30").unwrap();
        let v41 = c.intern_value(0, "41").unwrap();
        let ia = c.intern_item("a").unwrap();
        let ib = c.intern_item("b").unwrap();
        c.push_row_ids(&[v30], &[ib, ia, ib]).unwrap();
        c.push_row_ids(&[v41], &[ia]).unwrap();
        c.push_row_ids(&[v30], &[]).unwrap();
        c.finish().unwrap();
        assert_eq!(c.chunks().len(), 2);
        assert_eq!(c.transaction(0), &[ia, ib]);

        // identical to the same pushes on an RtTable
        let mut t = RtTable::new(schema);
        let _ = (t.intern_value(0, "30"), t.intern_value(0, "41"));
        let _ = (t.intern_item("a"), t.intern_item("b"));
        t.push_row_ids(&[v30], &[ib, ia, ib]).unwrap();
        t.push_row_ids(&[v41], &[ia]).unwrap();
        t.push_row_ids(&[v30], &[]).unwrap();
        assert_tables_identical(&t, &c.into_table().unwrap());
    }

    #[test]
    fn push_modes_cannot_mix() {
        let schema = Schema::new(vec![Attribute::categorical("A")]).unwrap();
        let mut c = ChunkedTable::new(schema, 4, MemoryBudget::unlimited());
        c.push_row(&["x"], &[]).unwrap();
        let v = ValueId(0);
        assert!(c.push_row_ids(&[v], &[]).is_err());
    }

    #[test]
    fn reclassify_numeric_matches_probe_rule() {
        let opts = CsvOptions::with_transaction("Items"); // no numeric annotation
        let mut chunked =
            read_chunked(SAMPLE.as_bytes(), &opts, 4, MemoryBudget::unlimited()).unwrap();
        chunked.reclassify_numeric();
        use crate::schema::AttributeKind;
        assert_eq!(
            chunked.schema().attribute(0).unwrap().kind,
            AttributeKind::Numeric,
            "Age is all-numeric"
        );
        assert_eq!(
            chunked.schema().attribute(1).unwrap().kind,
            AttributeKind::Categorical,
            "Edu stays categorical"
        );
        assert_eq!(
            chunked.schema().attribute(2).unwrap().kind,
            AttributeKind::Transaction
        );
    }

    #[test]
    fn chunk_rows_env_and_override() {
        // the override always wins and 0 is coerced
        set_chunk_rows(0);
        assert_eq!(chunk_rows(), 1);
        set_chunk_rows(512);
        assert_eq!(chunk_rows(), 512);
        set_chunk_rows(DEFAULT_CHUNK_ROWS);
        assert_eq!(chunk_rows(), DEFAULT_CHUNK_ROWS);
    }

    #[test]
    fn empty_inputs_rejected_like_in_memory() {
        let opts = CsvOptions::default();
        assert!(matches!(
            read_chunked("".as_bytes(), &opts, 4, MemoryBudget::unlimited()),
            Err(DataError::EmptyInput)
        ));
        // header-only is a valid empty table
        let t = read_chunked("A,B\n".as_bytes(), &opts, 4, MemoryBudget::unlimited())
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn path_errors_name_the_file() {
        let err = read_chunked_path(
            "/nonexistent/data.csv",
            &CsvOptions::default(),
            4,
            MemoryBudget::unlimited(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("/nonexistent/data.csv"));
    }
}
