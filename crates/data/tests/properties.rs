//! Property tests of the dataset substrate: CSV round trips survive
//! arbitrary content, and Dataset Editor command sequences preserve
//! table invariants.

use proptest::prelude::*;
use secreta_data::csv::{read_table, write_table, CsvOptions};
use secreta_data::edit::{EditCommand, EditSession};
use secreta_data::{Attribute, RtTable, Schema};

/// Values containing delimiters, quotes and whitespace.
fn nasty_value() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| {
        // strip characters the transaction field cannot carry (its
        // item delimiter) to keep the comparison well-defined
        s.trim().replace('\n', " ")
    })
}

fn item_token() -> impl Strategy<Value = String> {
    // items are whitespace-delimited: no spaces inside tokens
    "[!-~&&[^,\"]]{1,8}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_arbitrary_relational_values(
        rows in prop::collection::vec((nasty_value(), nasty_value()), 1..20)
    ) {
        let schema = Schema::new(vec![
            Attribute::categorical("A"),
            Attribute::categorical("B"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (a, b) in &rows {
            t.push_row(&[a, b], &[]).unwrap();
        }
        let opts = CsvOptions::default();
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &opts).unwrap();
        let back = read_table(buf.as_slice(), &opts).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            // the reader trims unquoted outer whitespace; writer quotes
            // anything ambiguous, so trimmed equality must hold
            prop_assert_eq!(back.value_str(r, 0).trim(), t.value_str(r, 0).trim());
            prop_assert_eq!(back.value_str(r, 1).trim(), t.value_str(r, 1).trim());
        }
    }

    #[test]
    fn csv_roundtrip_transactions(
        rows in prop::collection::vec(
            prop::collection::vec(item_token(), 0..6),
            1..20,
        )
    ) {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for items in &rows {
            let refs: Vec<&str> = items.iter().map(String::as_str).collect();
            t.push_row(&[], &refs).unwrap();
        }
        let opts = CsvOptions::with_transaction("Items");
        let mut buf = Vec::new();
        write_table(&t, &mut buf, &opts).unwrap();
        let back = read_table(buf.as_slice(), &opts).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            let mut a = t.transaction_strs(r);
            let mut b = back.transaction_strs(r);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn editor_sessions_keep_invariants_and_undo(
        edits in prop::collection::vec(
            (0usize..5, nasty_value(), prop::collection::vec(item_token(), 0..4)),
            0..25,
        )
    ) {
        let schema = Schema::new(vec![
            Attribute::categorical("A"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["x"], &["i1"]).unwrap();
        t.push_row(&["y"], &["i2", "i3"]).unwrap();
        let mut session = EditSession::new();
        let mut applied = 0usize;

        for (kind, value, items) in &edits {
            let cmd = match kind % 5 {
                0 => EditCommand::SetValue { row: 0, attr: 0, value: value.clone() },
                1 => EditCommand::AddRow {
                    rel_values: vec![value.clone()],
                    items: items.clone(),
                },
                2 => EditCommand::SetTransaction { row: 0, items: items.clone() },
                3 => EditCommand::DeleteRow { row: 0 },
                _ => EditCommand::RenameAttribute { attr: 0, name: format!("A_{value}") },
            };
            if session.apply(&mut t, &cmd).is_ok() {
                applied += 1;
            }
            // invariants after every step
            prop_assert_eq!(t.schema().len(), 2);
            for r in 0..t.n_rows() {
                let tx = t.transaction(r);
                prop_assert!(tx.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            }
        }
        prop_assert_eq!(session.applied(), applied);
        // unwind everything that can be unwound; tables stay valid
        while session.undo(&mut t).unwrap() {}
        for r in 0..t.n_rows() {
            let _ = t.value_str(r, 0);
        }
    }

    #[test]
    fn histograms_conserve_mass(
        rows in prop::collection::vec((0usize..6, prop::collection::vec(0usize..6, 0..5)), 1..30)
    ) {
        let schema = Schema::new(vec![
            Attribute::categorical("A"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (v, items) in &rows {
            let val = format!("v{v}");
            let items_s: Vec<String> = items.iter().map(|i| format!("i{i}")).collect();
            let refs: Vec<&str> = items_s.iter().map(String::as_str).collect();
            t.push_row(&[&val], &refs).unwrap();
        }
        let h = secreta_data::stats::relational_histogram(&t, 0);
        prop_assert_eq!(h.total(), t.n_rows() as u64);
        let hi = secreta_data::stats::item_histogram(&t);
        prop_assert_eq!(hi.total(), t.total_items() as u64);
        // top_k never loses mass
        for k in [1usize, 2, 100] {
            prop_assert_eq!(h.top_k(k).total(), h.total());
        }
    }
}
