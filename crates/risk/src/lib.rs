//! # secreta-risk
//!
//! Attack-side evaluation for SECRETA-rs: where `secreta-metrics`
//! measures how much *utility* an anonymization preserved, this crate
//! measures how much *protection* it actually delivers, by attacking
//! the published output with the standard adversary models:
//!
//! * [`relational`] — **prosecutor / journalist re-identification
//!   risk** over the relational quasi-identifier equivalence classes:
//!   a prosecutor knows their victim is in the published table (risk
//!   `1/|EC|`); a journalist only knows the victim is in the
//!   population the table was sampled from, so each class is diluted
//!   by the sampling fraction.
//! * [`mitem`] — **transaction re-identification / membership
//!   disclosure** under an adversary who knows up to *m* of the
//!   victim's original items. For each record the worst-case
//!   *candidate set* (published rows consistent with the best m-item
//!   background knowledge) is computed; a candidate set of size one is
//!   a unique re-identification. The kernel path reuses the tiered
//!   `InvertedIndex`/`RowSet` machinery from `secreta-transaction`, so
//!   the candidate-set intersections run on bitmap words for hot
//!   generalized items; the naive path is a brute-force O(n²) oracle
//!   the kernels are tested against.
//! * [`audit`] — a **constraint-violation audit** that re-checks the
//!   claimed guarantee (k-anonymity, k^m-anonymity, privacy policy,
//!   ρ-uncertainty) on the output and reports the number of violations
//!   as a hard error indicator.
//!
//! Everything aggregates through integer accumulators (counts, sums,
//! minima) with ratios computed once at the end, so the resulting
//! [`RiskIndicators`] block is byte-identical at any thread count and
//! replays exactly from stored run manifests. Work is tallied into
//! `risk/*` observability counters (see the registry in
//! `docs/GUIDE.md`).

#![deny(missing_docs)]

pub mod audit;
pub mod mitem;
pub mod relational;

pub use audit::audit_guarantee;
pub use mitem::transaction_risk;
pub use relational::relational_risk;

use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;
use secreta_metrics::{AnonTable, RiskIndicators};
use secreta_policy::PrivacyPolicy;
use secreta_transaction::Counting;

/// Tunables of the adversary models.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskParams {
    /// Fraction of the population the table is assumed to sample for
    /// the journalist model, in `(0, 1]`. A published class of size
    /// `s` is assumed drawn from a population class of size
    /// `ceil(s / sample_fraction)`.
    pub sample_fraction: f64,
    /// Prosecutor-risk threshold above which a record counts as "at
    /// risk" (e.g. `0.2` flags records in classes smaller than 5).
    pub risk_threshold: f64,
    /// Largest background-knowledge size evaluated by the m-item
    /// adversary (each `m` in `1..=max_m` is reported).
    pub max_m: u32,
}

impl Default for RiskParams {
    fn default() -> Self {
        RiskParams {
            sample_fraction: 0.1,
            risk_threshold: 0.2,
            max_m: 3,
        }
    }
}

/// The privacy guarantee an output claims, for the audit re-check.
#[derive(Debug, Clone, PartialEq)]
pub enum Guarantee {
    /// Relational k-anonymity at `k`.
    KAnonymity {
        /// The minimum equivalence-class size.
        k: usize,
    },
    /// Transaction k^m-anonymity: every itemset of up to `m` published
    /// items occurring at all occurs in at least `k` transactions.
    KmAnonymity {
        /// Minimum support of occurring published itemsets.
        k: usize,
        /// Largest itemset size checked.
        m: usize,
    },
    /// Privacy-policy protection (COAT/PCTA): every privacy
    /// constraint's published support is `0` or `≥ k`.
    Policy {
        /// Minimum nonzero support of a privacy constraint.
        k: usize,
    },
    /// RT (k, k^m)-anonymity: relational k-anonymity plus transaction
    /// k^m-anonymity on the same rows.
    KKmAnonymity {
        /// The minimum class size / itemset support.
        k: usize,
        /// Largest itemset size checked on the transaction side.
        m: usize,
    },
    /// ρ-uncertainty. Mining sensitive rules is the job of the
    /// verifiers in `secreta-transaction`; the audit reports their
    /// verdict as a pass/fail re-check.
    RhoUncertainty {
        /// The confidence threshold ρ.
        rho: f64,
        /// The verifier's verdict on the published output.
        satisfied: bool,
    },
}

/// Evaluate the full attack-side indicator block for a published
/// output.
///
/// `privacy` is the effective privacy policy for [`Guarantee::Policy`]
/// audits (ignored otherwise); `item_hierarchy` expands
/// hierarchy-node generalized values. `counting` picks the kernel or
/// the brute-force oracle for the m-item adversary — both produce
/// byte-identical indicators.
pub fn evaluate(
    table: &RtTable,
    anon: &AnonTable,
    item_hierarchy: Option<&Hierarchy>,
    privacy: Option<&PrivacyPolicy>,
    guarantee: &Guarantee,
    params: &RiskParams,
    counting: Counting,
) -> RiskIndicators {
    let recorder = secreta_obsv::current();
    let rel = relational_risk(anon, params);
    let (tx, work) = transaction_risk(table, anon, item_hierarchy, params, counting);
    let audit = audit_guarantee(anon, item_hierarchy, privacy, guarantee);
    if let Some(r) = &rel {
        recorder.count("risk/rel_classes", r.n_classes);
    }
    recorder.count("risk/tx_rows", work.rows);
    recorder.count("risk/tx_subsets", work.subsets);
    recorder.count("risk/tx_intersections", work.intersections);
    recorder.count("risk/tx_bitmap_intersections", work.bitmap_intersections);
    recorder.count("risk/audit_violations", audit.violations);
    RiskIndicators { rel, tx, audit }
}

/// Work counters accumulated by one m-item risk evaluation, flushed
/// as `risk/*` observability counters by [`evaluate`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RiskWork {
    /// Records attacked (rows with at least one original item).
    pub rows: u64,
    /// m-subsets of background knowledge enumerated.
    pub subsets: u64,
    /// Candidate-set intersections computed.
    pub intersections: u64,
    /// Intersections with at least one dense (bitmap) operand.
    pub bitmap_intersections: u64,
}

impl RiskWork {
    /// Add `other`'s totals into `self`.
    pub fn absorb(&mut self, other: &RiskWork) {
        self.rows += other.rows;
        self.subsets += other.subsets;
        self.intersections += other.intersections;
        self.bitmap_intersections += other.bitmap_intersections;
    }
}
