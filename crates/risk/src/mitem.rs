//! Transaction re-identification under m-item background knowledge.
//!
//! The adversary knows up to `m` original items of their victim's
//! transaction and matches them against the published (generalized)
//! rows: a row is a *candidate* when its published items cover every
//! known original item. The victim's **worst case** is the knowledge
//! subset with the fewest candidates — the adversary gets to pick what
//! they know. A worst case of one row is a unique re-identification; a
//! worst case of zero means suppression broke every link (the
//! adversary cannot even place the victim in the table).
//!
//! The kernel path builds a tiered inverted index over the published
//! gen-item ids ([`InvertedIndex::from_fn`]), materializes each
//! *distinct* candidate row set once as a [`RowSet`] (items with equal
//! covering lists share one set; dense bitmap for hot items), and
//! enumerates subsets of distinct sets only, smallest-first, with
//! per-shard memoized intersection counts. The naive path re-scans the
//! whole table per subset — the brute-force O(n²) oracle the kernel
//! is tested against. Both paths aggregate integer minima/sums merged
//! in fixed shard order, so results are byte-identical to each other
//! and across thread counts.

use crate::{RiskParams, RiskWork};
use secreta_data::hash::FxHashMap;
use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;
use secreta_metrics::{AnonTable, GenEntry, MItemRisk, TransactionRisk};
use secreta_transaction::support::{for_each_subset_u32, InvertedIndex, KernelStats};
use secreta_transaction::{Counting, RowSet};

/// Rows per shard below which the parallel row walk stays sequential.
const MIN_ROWS_PER_SHARD: usize = 128;

/// Per-shard integer accumulator; merged field-wise in shard order.
struct Acc {
    /// Per `m` (index `m - 1`): (min worst-case, Σ worst-case, unique
    /// records).
    per_m: Vec<(u64, u64, u64)>,
    /// Records with at least one original item.
    counted: u64,
    work: RiskWork,
}

impl Acc {
    fn new(max_m: u32) -> Acc {
        Acc {
            per_m: vec![(u64::MAX, 0, 0); max_m.max(1) as usize],
            counted: 0,
            work: RiskWork::default(),
        }
    }

    fn absorb(&mut self, other: &Acc) {
        for (a, b) in self.per_m.iter_mut().zip(&other.per_m) {
            a.0 = a.0.min(b.0);
            a.1 += b.1;
            a.2 += b.2;
        }
        self.counted += other.counted;
        self.work.absorb(&other.work);
    }

    /// Record one attacked row's worst-case candidate counts
    /// (`worst[m_eff - 1]` for `m_eff = min(m, row length)`).
    fn record(&mut self, worst_by_len: &[u64]) {
        self.counted += 1;
        self.work.rows += 1;
        for (i, slot) in self.per_m.iter_mut().enumerate() {
            let w = worst_by_len[i.min(worst_by_len.len() - 1)];
            slot.0 = slot.0.min(w);
            slot.1 += w;
            slot.2 += u64::from(w == 1);
        }
    }

    fn finish(self, max_m: u32) -> TransactionRisk {
        let per_m = (1..=max_m.max(1))
            .map(|m| {
                let (min, sum, unique) = self.per_m[(m - 1) as usize];
                MItemRisk {
                    m,
                    min_candidates: if self.counted == 0 { 0 } else { min },
                    avg_candidates: if self.counted == 0 {
                        0.0
                    } else {
                        sum as f64 / self.counted as f64
                    },
                    unique_fraction: if self.counted == 0 {
                        0.0
                    } else {
                        unique as f64 / self.counted as f64
                    },
                }
            })
            .collect();
        TransactionRisk { per_m }
    }
}

/// Compute the m-item adversary block for the transaction part of
/// `anon`, plus the work tally. `(None, work)` when the output has no
/// transaction part.
pub fn transaction_risk(
    table: &RtTable,
    anon: &AnonTable,
    item_hierarchy: Option<&Hierarchy>,
    params: &RiskParams,
    counting: Counting,
) -> (Option<TransactionRisk>, RiskWork) {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return (None, RiskWork::default()),
    };
    let acc = match counting {
        Counting::Kernel => kernel_attack(table, tx, item_hierarchy, params),
        Counting::Naive => naive_attack(table, tx, item_hierarchy, params),
    };
    let work = acc.work;
    (Some(acc.finish(params.max_m)), work)
}

/// Which gen-domain entries cover each original item id.
fn covering_lists(
    universe: usize,
    domain: &[GenEntry],
    item_hierarchy: Option<&Hierarchy>,
) -> Vec<Vec<u32>> {
    let mut covering: Vec<Vec<u32>> = vec![Vec::new(); universe];
    for (g, entry) in domain.iter().enumerate() {
        match entry {
            GenEntry::Set(s) => {
                for &v in s {
                    if (v as usize) < universe {
                        covering[v as usize].push(g as u32);
                    }
                }
            }
            GenEntry::Node(n) => {
                let h = item_hierarchy.expect("Node entries require the item hierarchy");
                for v in h.leaves_under(*n) {
                    if (v as usize) < universe {
                        covering[v as usize].push(g as u32);
                    }
                }
            }
            GenEntry::Suppressed => {}
        }
    }
    covering
}

fn kernel_attack(
    table: &RtTable,
    tx: &secreta_metrics::AnonTransaction,
    item_hierarchy: Option<&Hierarchy>,
    params: &RiskParams,
) -> Acc {
    let n = tx.n_rows();
    let universe = table.item_universe();
    let covering = covering_lists(universe, &tx.domain, item_hierarchy);
    // Tiered index over the *published* rows: gen id → rows containing
    // it, with hot gen items carrying bitmaps.
    let gidx = InvertedIndex::from_fn(n, tx.domain.len(), |row, buf| {
        buf.extend_from_slice(tx.row_items(row))
    });
    // Candidate sets, deduplicated: items with equal covering lists
    // have equal candidate sets, and after generalization most of the
    // universe collapses onto a few gen entries. Each distinct set is
    // materialized once (the union of the covering postings).
    let mut union_stats = KernelStats::default();
    let mut by_list: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut unique: Vec<RowSet> = Vec::new();
    let mut cand_id: Vec<Option<u32>> = Vec::with_capacity(universe);
    for c in &covering {
        if c.is_empty() {
            cand_id.push(None);
            continue;
        }
        let next = unique.len() as u32;
        let id = *by_list.entry(c.clone()).or_insert_with(|| {
            unique.push(gidx.union_rowset(c.iter().copied(), &mut union_stats));
            next
        });
        cand_id.push(Some(id));
    }
    // Re-key by ascending cardinality, so per-row sorted id lists put
    // the smallest sets first and subset keys are canonical across
    // rows (and shards — the memo is an optimization, not a source of
    // nondeterminism: every hit returns the exact count a recompute
    // would).
    let mut by_size: Vec<u32> = (0..unique.len() as u32).collect();
    by_size.sort_unstable_by_key(|&id| (unique[id as usize].len(), id));
    let mut rank_of = vec![0u32; unique.len()];
    for (rank, &id) in by_size.iter().enumerate() {
        rank_of[id as usize] = rank as u32;
    }
    let ordered: Vec<&RowSet> = by_size.iter().map(|&id| &unique[id as usize]).collect();
    let rank_of_item = |it: u32| cand_id[it as usize].map(|id| rank_of[id as usize]);

    let parts = secreta_parallel::par_chunks(n, MIN_ROWS_PER_SHARD, |lo, hi| {
        let mut acc = Acc::new(params.max_m);
        let mut distinct: Vec<u32> = Vec::new();
        let mut worst_by_len: Vec<u64> = Vec::new();
        let mut sets: Vec<&RowSet> = Vec::new();
        // per-shard memo: canonical (sorted-rank) subset → |∩|. Rows
        // sharing a generalized shape repeat the same intersections.
        let mut memo: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for row in lo..hi {
            let items = table.transaction(row);
            if items.is_empty() {
                continue;
            }
            // map items to distinct candidate-set ranks; an item no
            // published entry covers zeroes every knowledge size
            distinct.clear();
            let mut uncovered = false;
            for it in items {
                match rank_of_item(it.0) {
                    Some(r) => distinct.push(r),
                    None => {
                        uncovered = true;
                        break;
                    }
                }
            }
            if uncovered {
                worst_by_len.clear();
                worst_by_len.resize(params.max_m.max(1) as usize, 0);
                acc.record(&worst_by_len);
                continue;
            }
            distinct.sort_unstable();
            distinct.dedup();
            let d = distinct.len();
            // Exactness: an m_eff-item knowledge subset intersects the
            // distinct candidate sets of its items — a set family S
            // with |S| ≤ m_eff. Intersections only shrink as S grows,
            // and every family of size min(m_eff, d) is realizable
            // (pick one item per set, pad with duplicates), so the
            // worst case is the min over families of exactly that
            // size. Duplicate items never need enumerating.
            worst_by_len.clear();
            for m in 1..=params.max_m as usize {
                let size = m.min(items.len()).min(d);
                if m > 1 && size == (m - 1).min(items.len()).min(d) {
                    // same family size as the previous m — same worst
                    let prev = worst_by_len[m - 2];
                    worst_by_len.push(prev);
                    continue;
                }
                if m > 1 && worst_by_len[m - 2] == 0 {
                    // supersets of an empty intersection stay empty
                    worst_by_len.push(0);
                    continue;
                }
                let mut worst = u64::MAX;
                if size == 1 {
                    // ranks ascend with cardinality: first = smallest
                    worst = ordered[distinct[0] as usize].len() as u64;
                    acc.work.subsets += 1;
                } else {
                    for_each_subset_u32(&distinct, size, &mut |s| {
                        if worst == 0 {
                            return;
                        }
                        acc.work.subsets += 1;
                        let count = match memo.get(s) {
                            Some(&c) => c,
                            None => {
                                let c = family_count(s, &ordered, &mut sets, &mut acc.work);
                                memo.insert(s.to_vec(), c);
                                c
                            }
                        };
                        worst = worst.min(count);
                    });
                }
                worst_by_len.push(worst);
            }
            acc.record(&worst_by_len);
        }
        acc
    });
    let mut iter = parts.into_iter();
    let mut global = iter.next().unwrap_or_else(|| Acc::new(params.max_m));
    for part in iter {
        global.absorb(&part);
    }
    global
}

/// |∩| over a family of distinct candidate sets, given by ascending
/// size rank, with no intermediate materialization. `sets` is a reused
/// scratch buffer. Only called on memo misses, so the work tally
/// counts real intersections.
fn family_count<'a>(
    ranks: &[u32],
    ordered: &[&'a RowSet],
    sets: &mut Vec<&'a RowSet>,
    work: &mut RiskWork,
) -> u64 {
    sets.clear();
    sets.extend(ranks.iter().map(|&r| ordered[r as usize]));
    work.intersections += 1;
    // a sparse operand drives a probe walk: every row of the smallest
    // sparse set (ranks ascend with candidate size, so the first
    // sparse set is it) is membership-tested against the rest
    if let Some(pi) = sets.iter().position(|s| !s.is_dense()) {
        let RowSet::Sparse(rows) = sets[pi] else {
            unreachable!("position() found a non-dense set")
        };
        work.bitmap_intersections += u64::from(sets.iter().any(|s| s.is_dense()));
        return rows
            .iter()
            .filter(|&&r| {
                sets.iter()
                    .enumerate()
                    .all(|(j, s)| j == pi || s.contains(r))
            })
            .count() as u64;
    }
    // all dense: one word-wise AND chain with popcount
    work.bitmap_intersections += 1;
    let RowSet::Dense(first) = sets[0] else {
        unreachable!("no sparse set found")
    };
    first.intersect_count_many(sets[1..].iter().map(|s| match s {
        RowSet::Dense(b) => b,
        RowSet::Sparse(_) => unreachable!("handled by the probe walk"),
    })) as u64
}

/// The brute-force oracle: same enumeration, candidates counted by
/// re-scanning every published row per subset via [`GenEntry::covers`].
fn naive_attack(
    table: &RtTable,
    tx: &secreta_metrics::AnonTransaction,
    item_hierarchy: Option<&Hierarchy>,
    params: &RiskParams,
) -> Acc {
    let n = tx.n_rows();
    let mut acc = Acc::new(params.max_m);
    let mut worst_by_len: Vec<u64> = Vec::new();
    for row in 0..n {
        let items: Vec<u32> = table.transaction(row).iter().map(|it| it.0).collect();
        if items.is_empty() {
            continue;
        }
        worst_by_len.clear();
        for m in 1..=params.max_m as usize {
            let m_eff = m.min(items.len());
            if m_eff < m {
                let prev = worst_by_len[m_eff - 1];
                worst_by_len.push(prev);
                continue;
            }
            let mut worst = u64::MAX;
            for_each_subset_u32(&items, m_eff, &mut |s| {
                if worst == 0 {
                    return;
                }
                acc.work.subsets += 1;
                let count = (0..n)
                    .filter(|&r2| {
                        s.iter().all(|&i| {
                            tx.row_items(r2)
                                .iter()
                                .any(|&g| tx.domain[g as usize].covers(i, item_hierarchy))
                        })
                    })
                    .count() as u64;
                worst = worst.min(count);
            });
            worst_by_len.push(worst);
        }
        acc.record(&worst_by_len);
    }
    acc
}
