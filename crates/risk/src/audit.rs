//! Constraint-violation audit: re-check the claimed guarantee on the
//! published output and count how badly it fails.
//!
//! The framework's verifiers (`is_k_anonymous`, `is_km_anonymous`, …)
//! answer pass/fail; the audit answers *how many* records / itemsets /
//! constraints violate, which is what the risk indicators report as a
//! hard error signal. The counting rules mirror the verifiers exactly,
//! so `violations == 0 ⇔ passed` agrees with the `verified` indicator
//! for the same guarantee.

use crate::Guarantee;
use secreta_data::hash::FxHashMap;
use secreta_hierarchy::Hierarchy;
use secreta_metrics::{AnonTable, ConstraintAudit};
use secreta_policy::PrivacyPolicy;
use secreta_transaction::support::for_each_subset_u32;

/// Re-check `guarantee` on `anon`, counting violations.
pub fn audit_guarantee(
    anon: &AnonTable,
    item_hierarchy: Option<&Hierarchy>,
    privacy: Option<&PrivacyPolicy>,
    guarantee: &Guarantee,
) -> ConstraintAudit {
    let (label, violations) = match guarantee {
        Guarantee::KAnonymity { k } => (format!("k-anonymity(k={k})"), k_violations(anon, *k)),
        Guarantee::KmAnonymity { k, m } => (
            format!("k^m-anonymity(k={k},m={m})"),
            km_violations(anon, *k, *m),
        ),
        Guarantee::Policy { k } => (
            format!("privacy-policy(k={k})"),
            policy_violations(anon, item_hierarchy, privacy, *k),
        ),
        Guarantee::KKmAnonymity { k, m } => (
            format!("(k,k^m)-anonymity(k={k},m={m})"),
            k_violations(anon, *k) + km_violations(anon, *k, *m),
        ),
        Guarantee::RhoUncertainty { rho, satisfied } => {
            (format!("rho-uncertainty(rho={rho})"), u64::from(!satisfied))
        }
    };
    ConstraintAudit {
        guarantee: label,
        violations,
        passed: violations == 0,
    }
}

/// Records living in QI equivalence classes smaller than `k`.
fn k_violations(anon: &AnonTable, k: usize) -> u64 {
    if anon.rel.is_empty() {
        return 0;
    }
    let (sizes, _) = anon.equivalence_classes();
    sizes.iter().filter(|&&s| s < k).map(|&s| s as u64).sum()
}

/// Occurring published itemsets (sizes `1..=m`) with support `< k`.
fn km_violations(anon: &AnonTable, k: usize, m: usize) -> u64 {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return 0,
    };
    let m = m.max(1);
    let mut violations = 0u64;
    for size in 1..=m {
        let mut sup: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        for row in 0..tx.n_rows() {
            let items = tx.row_items(row);
            if items.len() < size {
                continue;
            }
            for_each_subset_u32(items, size, &mut |s| {
                *sup.entry(s.to_vec()).or_insert(0) += 1;
            });
        }
        violations += sup.values().filter(|&&c| (c as usize) < k).count() as u64;
    }
    violations
}

/// Privacy constraints with published support in `(0, k)`.
fn policy_violations(
    anon: &AnonTable,
    item_hierarchy: Option<&Hierarchy>,
    privacy: Option<&PrivacyPolicy>,
    k: usize,
) -> u64 {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return 0,
    };
    let privacy = match privacy {
        Some(p) => p,
        None => return 0,
    };
    let mut violations = 0u64;
    for c in &privacy.constraints {
        if c.is_empty() {
            continue;
        }
        let mut sup = 0usize;
        for row in 0..tx.n_rows() {
            let items = tx.row_items(row);
            let all_covered = c.iter().all(|it| {
                items
                    .iter()
                    .any(|&g| tx.domain[g as usize].covers(it.0, item_hierarchy))
            });
            if all_covered {
                sup += 1;
            }
        }
        if sup > 0 && sup < k {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, ItemId, RtTable, Schema};
    use secreta_metrics::anon::RelColumn;
    use secreta_metrics::GenEntry;

    fn tx_table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["c"]).unwrap();
        t
    }

    #[test]
    fn k_anonymity_counts_small_class_records() {
        let anon = AnonTable {
            rel: vec![RelColumn {
                attr: 0,
                domain: vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])],
                cells: vec![0, 0, 0, 1],
            }],
            tx: None,
            n_rows: 4,
        };
        let a = audit_guarantee(&anon, None, None, &Guarantee::KAnonymity { k: 2 });
        assert_eq!(a.violations, 1, "the singleton class has one record");
        assert!(!a.passed);
        let a3 = audit_guarantee(&anon, None, None, &Guarantee::KAnonymity { k: 4 });
        assert_eq!(a3.violations, 4, "both classes are below 4");
    }

    #[test]
    fn km_counts_under_supported_itemsets() {
        let t = tx_table();
        let anon = AnonTable::identity(&t, &[]);
        // items: a,b sup 2; c sup 1; pair {a,b} sup 2
        let ok = audit_guarantee(&anon, None, None, &Guarantee::KmAnonymity { k: 1, m: 2 });
        assert!(ok.passed);
        let bad = audit_guarantee(&anon, None, None, &Guarantee::KmAnonymity { k: 2, m: 2 });
        assert_eq!(bad.violations, 1, "only {{c}} is under-supported");
        assert_eq!(bad.guarantee, "k^m-anonymity(k=2,m=2)");
    }

    #[test]
    fn policy_counts_violating_constraints() {
        let t = tx_table();
        let anon = AnonTable::identity(&t, &[]);
        let policy = PrivacyPolicy::new(vec![vec![ItemId(0)], vec![ItemId(2)]]);
        let a = audit_guarantee(&anon, None, Some(&policy), &Guarantee::Policy { k: 2 });
        assert_eq!(a.violations, 1, "constraint {{c}} has support 1");
        // zero-support constraints are fine: audit agrees with the
        // verifier's `sup == 0 or ≥ k` rule
        let dom = vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])];
        let tx = secreta_metrics::AnonTransaction::from_mapping(&t, dom, |it| {
            (it.0 < 2).then_some(it.0)
        });
        let suppressed = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 3,
        };
        let a = audit_guarantee(
            &suppressed,
            None,
            Some(&policy),
            &Guarantee::Policy { k: 2 },
        );
        assert!(a.passed);
    }

    #[test]
    fn rho_passes_through_the_verdict() {
        let anon = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 0,
        };
        let g = Guarantee::RhoUncertainty {
            rho: 0.5,
            satisfied: false,
        };
        let a = audit_guarantee(&anon, None, None, &g);
        assert_eq!(a.violations, 1);
        assert_eq!(a.guarantee, "rho-uncertainty(rho=0.5)");
    }
}
