//! Prosecutor / journalist re-identification risk for relational
//! output.
//!
//! Both models score a record by the size of its equivalence class
//! over the published quasi-identifier values. The **prosecutor**
//! knows the victim is in the table: re-identification probability
//! `1/|EC|`. The **journalist** only knows the victim is in the
//! population the table sampled; under the standard sampled-population
//! model a published class of size `s` stands for a population class
//! of at least `ceil(s / π)` individuals at sampling fraction `π`, so
//! the risk dilutes to `1 / ceil(s / π)`.

use crate::RiskParams;
use secreta_metrics::{AnonTable, RelationalRisk};

/// Compute the relational risk block; `None` when the output has no
/// relational part (class statistics over an empty QI set would be a
/// single meaningless class).
pub fn relational_risk(anon: &AnonTable, params: &RiskParams) -> Option<RelationalRisk> {
    if anon.rel.is_empty() {
        return None;
    }
    let (sizes, _) = anon.equivalence_classes();
    if sizes.is_empty() {
        return None;
    }
    let n_rows: u64 = sizes.iter().map(|&s| s as u64).sum();
    let min_class = sizes.iter().copied().min().unwrap_or(0) as u64;
    // Σ over records of 1/|EC| = number of classes, exactly
    let n_classes = sizes.len() as u64;
    let mut at_risk: u64 = 0;
    for &s in &sizes {
        // 1/s > threshold  ⇔  s · threshold < 1
        if (s as f64) * params.risk_threshold < 1.0 {
            at_risk += s as u64;
        }
    }
    let pi = params.sample_fraction.clamp(f64::MIN_POSITIVE, 1.0);
    let population_min_class = (min_class as f64 / pi).ceil().max(1.0);
    Some(RelationalRisk {
        n_classes,
        min_class_size: min_class,
        max_prosecutor: 1.0 / min_class.max(1) as f64,
        avg_prosecutor: n_classes as f64 / n_rows.max(1) as f64,
        max_journalist: 1.0 / population_min_class,
        at_risk_fraction: at_risk as f64 / n_rows.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_metrics::anon::RelColumn;
    use secreta_metrics::GenEntry;

    fn anon_with_classes(cells: Vec<u32>) -> AnonTable {
        let n = cells.len();
        AnonTable {
            rel: vec![RelColumn {
                attr: 0,
                domain: vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])],
                cells,
            }],
            tx: None,
            n_rows: n,
        }
    }

    #[test]
    fn class_statistics() {
        // classes: {0,0,0} and {1}
        let anon = anon_with_classes(vec![0, 0, 0, 1]);
        let r = relational_risk(&anon, &RiskParams::default()).unwrap();
        assert_eq!(r.n_classes, 2);
        assert_eq!(r.min_class_size, 1);
        assert_eq!(r.max_prosecutor, 1.0);
        assert_eq!(r.avg_prosecutor, 0.5);
        // default threshold 0.2: both classes are smaller than 5
        assert_eq!(r.at_risk_fraction, 1.0);
        // min class 1 at π = 0.1 → population class of 10
        assert_eq!(r.max_journalist, 0.1);
    }

    #[test]
    fn no_relational_part_is_none() {
        let anon = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 5,
        };
        assert!(relational_risk(&anon, &RiskParams::default()).is_none());
    }

    #[test]
    fn threshold_splits_classes() {
        let anon = anon_with_classes(vec![0, 0, 0, 0, 0, 1, 1]);
        let params = RiskParams {
            risk_threshold: 0.25,
            ..Default::default()
        };
        // 1/5 = 0.2 ≤ 0.25 not at risk; 1/2 = 0.5 > 0.25 at risk
        let r = relational_risk(&anon, &params).unwrap();
        assert_eq!(r.at_risk_fraction, 2.0 / 7.0);
    }
}
