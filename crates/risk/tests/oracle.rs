//! Kernel-vs-oracle agreement and thread invariance for the risk
//! metrics: the tiered candidate-set kernel must produce byte-exact
//! the same indicators as the brute-force O(n²) reference, on random
//! tables (including empty and duplicate transactions), with both
//! row-set tiers forced, and at any thread count.

use proptest::prelude::*;
use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
use secreta_hierarchy::auto_hierarchy;
use secreta_metrics::AnonTable;
use secreta_risk::{transaction_risk, RiskParams};
use secreta_transaction::Counting::{Kernel, Naive};
use secreta_transaction::{apriori, coat, set_density_threshold, TransactionInput};
use std::sync::Mutex;

/// Serializes tests that touch process-global knobs (thread cap,
/// density threshold).
static GLOBALS: Mutex<()> = Mutex::new(());

fn build_table(rows: &[Vec<usize>], universe: usize) -> RtTable {
    let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
    let mut t = RtTable::new(schema);
    for i in 0..universe {
        t.intern_item(&format!("i{i:02}")).unwrap();
    }
    for row in rows {
        let items: Vec<String> = row.iter().map(|&v| format!("i{v:02}")).collect();
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        t.push_row(&[], &refs).unwrap();
    }
    t
}

/// Random rows with empty transactions and duplicate rows both likely.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..16, 0..6), 4..32).prop_map(|mut rows| {
        // force at least one duplicate pair and one empty transaction
        let first = rows[0].clone();
        rows.push(first);
        rows.push(Vec::new());
        rows
    })
}

fn attack_both(t: &RtTable, anon: &AnonTable, params: &RiskParams) {
    let (fast, _) = transaction_risk(t, anon, None, params, Kernel);
    let (slow, _) = transaction_risk(t, anon, None, params, Naive);
    assert_eq!(fast, slow, "kernel diverged from the O(n²) oracle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel == oracle on the identity publication and on real
    /// anonymized outputs (generalizing and suppressing algorithms).
    #[test]
    fn kernel_matches_oracle(rows in rows_strategy(), k in 1usize..4) {
        let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let t = build_table(&rows, 16);
        let params = RiskParams::default();

        // identity: every candidate set is an exact-match row set
        attack_both(&t, &AnonTable::identity(&t, &[]), &params);

        // apriori generalizes over the hierarchy
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let km = TransactionInput::km(&t, k, 2, &h);
        if let Ok(out) = apriori::anonymize(&km) {
            // Node/Set entries both appear depending on the cut
            let (fast, _) = transaction_risk(&t, &out.anon, Some(&h), &params, Kernel);
            let (slow, _) = transaction_risk(&t, &out.anon, Some(&h), &params, Naive);
            prop_assert_eq!(fast, slow, "apriori output diverged");
        }

        // coat suppresses items: zero-candidate records appear
        let plain = TransactionInput {
            table: &t,
            k,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        if let Ok(out) = coat::anonymize(&plain) {
            attack_both(&t, &out.anon, &params);
        }
    }

    /// Same agreement with the density threshold forced to zero, so
    /// every candidate set rides the dense bitmap tier.
    #[test]
    fn kernel_matches_oracle_dense_tier(rows in rows_strategy()) {
        let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let t = build_table(&rows, 16);
        let anon = AnonTable::identity(&t, &[]);
        let params = RiskParams::default();
        set_density_threshold(Some(0.0));
        let (fast, _) = transaction_risk(&t, &anon, None, &params, Kernel);
        set_density_threshold(None);
        let (slow, _) = transaction_risk(&t, &anon, None, &params, Naive);
        prop_assert_eq!(fast, slow, "dense tier diverged from the oracle");
    }
}

/// The sharded kernel walk must be byte-identical at 1/2/8 threads —
/// the merge is integer min/sum in fixed shard order.
#[test]
fn risk_invariant_under_thread_count() {
    let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    // deterministic skewed table large enough to shard (≥ 128 rows
    // per shard)
    let mut rows: Vec<Vec<usize>> = Vec::new();
    let mut s: u64 = 0x2545_f491_4f6c_dd1d;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..700 {
        let len = (next() % 5) as usize;
        rows.push(
            (0..len)
                .map(|_| {
                    let r = (next() % 24) as usize;
                    r * r / 24
                })
                .collect(),
        );
    }
    let t = build_table(&rows, 24);
    let anon = AnonTable::identity(&t, &[]);
    let params = RiskParams::default();

    secreta_parallel::set_threads(1);
    let (sequential, _) = transaction_risk(&t, &anon, None, &params, Kernel);
    for threads in [2, 8] {
        secreta_parallel::set_threads(threads);
        let (parallel, _) = transaction_risk(&t, &anon, None, &params, Kernel);
        assert_eq!(
            parallel, sequential,
            "risk indicators differ at {threads} threads"
        );
    }
    secreta_parallel::set_threads(0);
    // and the sharded walk agrees with the oracle on this table too
    let (slow, _) = transaction_risk(&t, &anon, None, &params, Naive);
    assert_eq!(sequential, slow);
}
