//! Full-subtree bottom-up generalization.
//!
//! The counterpart of Top-down specialization that the paper lists as
//! SECRETA's fourth relational algorithm ("Full subtree bottom-up").
//! It starts from the original data (the leaf cut) and, while any
//! equivalence class is smaller than `k`, applies the cheapest
//! *generalization*: replacing all children of some hierarchy node by
//! that node (full-subtree, global recoding). Candidates are
//! restricted to nodes covering at least one value that occurs in a
//! violating class, so every step works towards feasibility; among
//! those, the step with the smallest record-weighted NCP increase is
//! taken.

use crate::common::{RelError, RelOutput, RelationalInput};
use crate::kernel::{Counting, CutClasses};
use secreta_data::hash::{FxHashMap, FxHashSet};
use secreta_hierarchy::Cut;
use secreta_hierarchy::NodeId;
use secreta_metrics::anon::rel_column_from_value_map;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Run full-subtree bottom-up generalization on `input` with the
/// kernel counting paths.
pub fn anonymize(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run Bottom-up with the naive per-round full-row regrouping — the
/// reference oracle the kernel path is tested and benchmarked against.
pub fn anonymize_reference(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Naive)
}

/// Cheapest candidate by weighted NCP increase. Shared by both
/// counting paths: the sort plus `min_by` comparator pin down the tie
/// behavior, so factoring it keeps the paths identical by
/// construction.
fn select_cheapest(
    input: &RelationalInput,
    cuts: &[Cut],
    counts: &[Vec<u64>],
    totals: &[u64],
    cands: FxHashSet<(usize, NodeId)>,
) -> (usize, NodeId) {
    let mut ordered: Vec<(usize, NodeId)> = cands.into_iter().collect();
    ordered.sort_unstable_by_key(|&(pos, n)| (pos, n));
    ordered
        .into_iter()
        .min_by(|&(pa, na), &(pb, nb)| {
            let da = ncp_increase(input, &cuts[pa], pa, na, &counts[pa], totals[pa]);
            let db = ncp_increase(input, &cuts[pb], pb, nb, &counts[pb], totals[pb]);
            da.partial_cmp(&db).expect("NCP is finite")
        })
        .expect("candidates non-empty")
}

/// Run full-subtree bottom-up generalization on `input` with an
/// explicit [`Counting`] selection.
pub fn anonymize_with(input: &RelationalInput, counting: Counting) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();

    let q = input.qi_attrs.len();
    let (counts, totals) = input.qi_value_counts();
    let mut cuts: Vec<Cut> = input.hierarchies.iter().map(Cut::leaves).collect();
    // row-major QI values: the signature grouping below re-reads every
    // cell once per round, so table lookups must stay off that path
    let matrix = input.value_matrix();
    // kernel: group the rows once at the leaf cut; every later round
    // works on class signatures (remap + coalesce), never on rows
    let mut classes = match counting {
        Counting::Kernel => {
            let domains: Vec<usize> = input
                .qi_attrs
                .iter()
                .map(|&a| input.table.domain_size(a))
                .collect();
            Some(CutClasses::leaf_cut(&matrix, &input.hierarchies, &domains))
        }
        Counting::Naive => None,
    };
    timer.phase("setup");

    let recorder = secreta_obsv::current();
    let mut merges = 0u64;
    let mut class_scans = 0u64;
    loop {
        // candidate generalizations: parents of cut nodes used by
        // violating rows (equivalently, by violating classes — every
        // row of a class shares its signature)
        let mut cands: FxHashSet<(usize, NodeId)> = FxHashSet::default();
        match &classes {
            Some(cc) => {
                class_scans += cc.n_classes() as u64;
                let violating = cc.violating(input.k);
                if violating.is_empty() {
                    break;
                }
                for c in violating {
                    for pos in 0..q {
                        if let Some(parent) = input.hierarchies[pos].parent(cc.node(c, pos)) {
                            cands.insert((pos, parent));
                        }
                    }
                }
            }
            None => {
                // group rows by current signature; clone the key only
                // when a new group appears (groups are few, rows are
                // many)
                let mut groups: FxHashMap<Vec<NodeId>, Vec<usize>> = FxHashMap::default();
                let mut sig = Vec::with_capacity(q);
                for row in 0..input.table.n_rows() {
                    sig.clear();
                    for (pos, &v) in matrix.row(row).iter().enumerate() {
                        sig.push(cuts[pos].node_of(v));
                    }
                    if let Some(rows) = groups.get_mut(&sig) {
                        rows.push(row);
                    } else {
                        groups.insert(sig.clone(), vec![row]);
                    }
                }
                let violators: Vec<usize> = groups
                    .values()
                    .filter(|rows| rows.len() < input.k)
                    .flat_map(|rows| rows.iter().copied())
                    .collect();
                if violators.is_empty() {
                    break;
                }
                for &row in &violators {
                    for (pos, &v) in matrix.row(row).iter().enumerate() {
                        let node = cuts[pos].node_of(v);
                        if let Some(parent) = input.hierarchies[pos].parent(node) {
                            cands.insert((pos, parent));
                        }
                    }
                }
            }
        }
        if cands.is_empty() {
            // all violating values already at the root in every
            // attribute: k-anonymity unreachable (cannot happen when
            // k <= n, but guard against logic drift)
            return Err(RelError::Infeasible {
                k: input.k,
                n: input.table.n_rows(),
            });
        }

        // cheapest candidate by weighted NCP increase
        let (best_pos, best_node) = select_cheapest(input, &cuts, &counts, &totals, cands);
        cuts[best_pos].generalize_to(&input.hierarchies[best_pos], best_node);
        if let Some(cc) = classes.take() {
            classes = Some(cc.remap(best_pos, &input.hierarchies[best_pos], best_node));
        }
        merges += 1;
    }
    recorder.count("bottomup/generalizations", merges);
    recorder.count("bottomup/class_scans", class_scans);
    timer.phase("generalization");

    let rel = input
        .qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            rel_column_from_value_map(input.table, attr, |v| {
                GenEntry::Node(cuts[pos].node_of(v.0))
            })
        })
        .collect();
    let anon = AnonTable {
        rel,
        tx: None,
        n_rows: input.table.n_rows(),
    };
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Record-weighted NCP increase of generalizing attribute `pos`'s cut
/// to `target`.
fn ncp_increase(
    input: &RelationalInput,
    cut: &Cut,
    pos: usize,
    target: NodeId,
    counts: &[u64],
    total: u64,
) -> f64 {
    let h = &input.hierarchies[pos];
    if total == 0 {
        return 0.0;
    }
    let mut delta = 0.0;
    for v in h.leaves_under(target) {
        let c = counts[v as usize];
        if c > 0 {
            delta += (h.ncp(target) - h.ncp(cut.node_of(v))) * c as f64;
        }
    }
    delta / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k,
        }
    }

    #[test]
    fn produces_k_anonymous_truthful_output() {
        let t = table();
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            assert!(is_k_anonymous(&out.anon, k), "k={k}");
            let hs = input(&t, k).hierarchies;
            assert!(out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None));
        }
    }

    #[test]
    fn k1_keeps_original() {
        let t = table();
        let out = anonymize(&input(&t, 1)).unwrap();
        let hs = input(&t, 1).hierarchies;
        assert_eq!(gcp(&t, &out.anon, |a| Some(hs[a].clone())), 0.0);
    }

    #[test]
    fn already_anonymous_data_untouched() {
        // duplicate rows are 2-anonymous as-is
        let schema = Schema::new(vec![Attribute::categorical("X")]).unwrap();
        let mut t = RtTable::new(schema);
        for _ in 0..2 {
            t.push_row(&["a"], &[]).unwrap();
            t.push_row(&["b"], &[]).unwrap();
        }
        let h = auto_hierarchy(t.pool(0), AttributeKind::Categorical, 2).unwrap();
        let out = anonymize(&RelationalInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: vec![h.clone()],
            k: 2,
        })
        .unwrap();
        assert_eq!(gcp(&t, &out.anon, |_| Some(h.clone())), 0.0);
    }

    #[test]
    fn loss_is_monotone_in_k() {
        let t = table();
        let hs = input(&t, 1).hierarchies;
        let mut prev = -1.0;
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            assert!(g >= prev - 1e-12, "k={k}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn infeasible_k_rejected() {
        let t = table();
        assert!(matches!(
            anonymize(&input(&t, 9)),
            Err(RelError::Infeasible { .. })
        ));
    }

    #[test]
    fn skewed_data_converges() {
        // one outlier among duplicates forces generalization
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        for _ in 0..5 {
            t.push_row(&["30"], &[]).unwrap();
        }
        t.push_row(&["90"], &[]).unwrap();
        let h = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let out = anonymize(&RelationalInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: vec![h],
            k: 2,
        })
        .unwrap();
        assert!(is_k_anonymous(&out.anon, 2));
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let out = anonymize(&input(&t, 4)).unwrap();
        assert!(out.phases.get("generalization").is_some());
    }

    #[test]
    fn kernel_matches_naive_on_fixture() {
        let t = table();
        for k in [1, 2, 3, 4, 8] {
            let fast = anonymize_with(&input(&t, k), Counting::Kernel).unwrap();
            let slow = anonymize_with(&input(&t, k), Counting::Naive).unwrap();
            assert_eq!(fast.anon, slow.anon, "k={k}");
        }
    }
}
