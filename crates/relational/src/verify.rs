//! Post-hoc verification of k-anonymity.
//!
//! Algorithms are trusted nowhere in SECRETA-rs: every run's output
//! can be re-checked from the published table alone, and the test
//! suites of all four algorithms (plus the integration tests) do so.

use secreta_metrics::AnonTable;

/// Is `anon` k-anonymous on its generalized relational columns — every
/// equivalence class of generalized signatures at least `k` rows?
///
/// An empty table is vacuously anonymous; a table with *no* anonymized
/// relational columns forms a single class of all rows.
pub fn is_k_anonymous(anon: &AnonTable, k: usize) -> bool {
    if anon.n_rows == 0 {
        return true;
    }
    let (sizes, _) = anon.equivalence_classes();
    sizes.iter().all(|&s| s >= k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_metrics::anon::RelColumn;
    use secreta_metrics::GenEntry;

    fn anon(cells: Vec<u32>) -> AnonTable {
        let max = cells.iter().copied().max().unwrap_or(0);
        AnonTable {
            n_rows: cells.len(),
            rel: vec![RelColumn {
                attr: 0,
                domain: (0..=max).map(|v| GenEntry::Set(vec![v])).collect(),
                cells,
            }],
            tx: None,
        }
    }

    #[test]
    fn detects_k_anonymity() {
        let a = anon(vec![0, 0, 1, 1]);
        assert!(is_k_anonymous(&a, 1));
        assert!(is_k_anonymous(&a, 2));
        assert!(!is_k_anonymous(&a, 3));
    }

    #[test]
    fn singleton_class_fails_k2() {
        let a = anon(vec![0, 0, 1]);
        assert!(!is_k_anonymous(&a, 2));
    }

    #[test]
    fn empty_table_is_vacuously_anonymous() {
        let a = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 0,
        };
        assert!(is_k_anonymous(&a, 100));
    }

    #[test]
    fn no_rel_columns_is_one_class() {
        let a = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 5,
        };
        assert!(is_k_anonymous(&a, 5));
        assert!(!is_k_anonymous(&a, 6));
    }
}
