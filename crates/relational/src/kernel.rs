//! Partition-rollup counting kernels for the relational algorithms.
//!
//! The lattice/specialization searches of Incognito, Top-down and
//! Bottom-up spend their time answering one question — *what is the
//! smallest equivalence class under this recoding?* — and the naive
//! implementations answer it by rescanning the full row matrix per
//! candidate ([`crate::common::min_class_size_matrix`]). This module
//! concentrates that work in three reusable structures that mirror the
//! transaction side's `Counting::{Naive,Kernel}` split:
//!
//! * [`RecodeTables`] — per-(attribute, level) dense recode tables
//!   (value id → group id), precomputed once per run from each
//!   hierarchy's [`Hierarchy::level_table`] export, plus the
//!   level-to-level *merge tables* that make rollups possible.
//! * [`Partition`] — the equivalence classes of a full-domain lattice
//!   node as per-class group signatures and sizes. Raising one
//!   attribute's level is a [`Partition::rollup`]: class signatures
//!   remap through a merge table and equal signatures coalesce — an
//!   O(#classes · q) operation that never touches a row. This is the
//!   *generalization rollup property* of LeFevre et al.'s Incognito:
//!   a coarser node's classes are a merge of a finer node's classes.
//! * [`RowPartition`] / [`CutClasses`] — cut-based partitions for
//!   Top-down (class → row lists, so a candidate split only touches
//!   the rows of the classes it splits) and Bottom-up (class
//!   signatures only, so a generalization step is a signature remap
//!   instead of an O(n·q) regroup).
//!
//! Every kernel result is byte-identical to the corresponding naive
//! computation; the `kernels` integration tests prove it on randomized
//! inputs at 1/2/8 threads.

use crate::common::ValueMatrix;
use secreta_data::hash::FxHashMap;
use secreta_hierarchy::{Hierarchy, NodeId};

/// Which counting implementation a relational algorithm run uses.
///
/// `Kernel` is the production default; `Naive` preserves the original
/// rescan-everything implementations as a reference oracle for
/// benchmarks and equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counting {
    /// Rescan the full row matrix per lattice node / candidate.
    Naive,
    /// Precomputed recode tables, partition rollups, split-local row
    /// touching, deterministic parallel lattice levels.
    Kernel,
}

/// One attribute's dense recode table at one full-domain level: value
/// id → dense group id, where two values share a group exactly when
/// [`Hierarchy::generalize`] maps them to the same node at that level.
pub struct LevelTable {
    /// `groups[v]` is the dense group id of value `v`.
    pub groups: Vec<u32>,
    /// Number of distinct groups (`groups` values are `0..n_groups`).
    pub n_groups: u32,
}

/// All recode and merge tables of a run's hierarchies, built once.
pub struct RecodeTables {
    /// `tables[pos][level]` for `level in 0..=heights[pos]`.
    tables: Vec<Vec<LevelTable>>,
    /// `merges[pos][level]`: group id at `level` → group id at
    /// `level + 1`, for `level in 0..heights[pos]`.
    merges: Vec<Vec<Vec<u32>>>,
}

impl RecodeTables {
    /// Precompute every level's recode table and the merge tables
    /// between consecutive levels. O(Σ height · domain).
    pub fn build(hierarchies: &[Hierarchy]) -> RecodeTables {
        let mut tables = Vec::with_capacity(hierarchies.len());
        let mut merges = Vec::with_capacity(hierarchies.len());
        for h in hierarchies {
            let height = h.height();
            let mut levels: Vec<LevelTable> = Vec::with_capacity(height as usize + 1);
            for lvl in 0..=height {
                let nodes = h.level_table(lvl);
                let mut ids: FxHashMap<NodeId, u32> = FxHashMap::default();
                let mut groups = Vec::with_capacity(nodes.len());
                for node in nodes {
                    let next = ids.len() as u32;
                    groups.push(*ids.entry(node).or_insert(next));
                }
                levels.push(LevelTable {
                    groups,
                    n_groups: ids.len().max(1) as u32,
                });
            }
            // merge tables: two values in the same group at `lvl` are in
            // the same group at `lvl + 1` (same node ⇒ same parent), so
            // the per-value assignment below is consistent
            let mut hm = Vec::with_capacity(height as usize);
            for lvl in 0..height as usize {
                let (fine, coarse) = (&levels[lvl], &levels[lvl + 1]);
                let mut merge = vec![0u32; fine.n_groups as usize];
                for v in 0..fine.groups.len() {
                    merge[fine.groups[v] as usize] = coarse.groups[v];
                }
                hm.push(merge);
            }
            tables.push(levels);
            merges.push(hm);
        }
        RecodeTables { tables, merges }
    }

    /// The recode table of attribute `pos` at `level` (clamped to the
    /// attribute's height, matching full-domain recoding semantics).
    #[inline]
    pub fn table(&self, pos: usize, level: u32) -> &LevelTable {
        let levels = &self.tables[pos];
        &levels[(level as usize).min(levels.len() - 1)]
    }

    /// The merge table lifting attribute `pos` from `level` to
    /// `level + 1`.
    #[inline]
    pub fn merge(&self, pos: usize, level: u32) -> &[u32] {
        &self.merges[pos][level as usize]
    }
}

/// Deterministic class-signature interner behind [`Partition`]: maps a
/// `q`-component group signature to a dense class index, choosing its
/// storage from the signature code space exactly like
/// [`crate::common::min_class_size_matrix`] does (flat vector when the
/// space is small, `u64` codes in a hash map when it fits a word, full
/// signatures when it overflows).
enum Grouper {
    /// Flat `code → class` vector (`u32::MAX` = unused code).
    Dense {
        strides: Vec<u64>,
        class_of: Vec<u32>,
    },
    /// `u64` code → class.
    Coded {
        strides: Vec<u64>,
        map: FxHashMap<u64, u32>,
    },
    /// Code space exceeds `u64`: key on the full signature.
    Wide { map: FxHashMap<Vec<u32>, u32> },
}

impl Grouper {
    /// `dims[pos]` is the number of groups of signature component
    /// `pos`; `n_items` bounds how many distinct signatures will be
    /// interned (rows or classes), sizing the dense tier.
    fn new(dims: &[u32], n_items: usize) -> Grouper {
        let mut strides = Vec::with_capacity(dims.len());
        let mut space: u64 = 1;
        let mut overflow = false;
        for &d in dims {
            strides.push(space);
            match space.checked_mul(d.max(1) as u64) {
                Some(p) => space = p,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if overflow {
            Grouper::Wide {
                map: FxHashMap::default(),
            }
        } else if space <= (n_items as u64).saturating_mul(4).max(1024) && space <= (1 << 22) {
            Grouper::Dense {
                strides,
                class_of: vec![u32::MAX; space as usize],
            }
        } else {
            Grouper::Coded {
                strides,
                map: FxHashMap::default(),
            }
        }
    }

    /// Class index of `sig`, interning it (and appending it to `sigs`)
    /// when unseen. Returns the index; a fresh class's index equals
    /// the previous class count.
    fn intern(&mut self, sig: &[u32], sigs: &mut Vec<u32>, n_classes: usize) -> usize {
        match self {
            Grouper::Dense { strides, class_of } => {
                let code: u64 = sig
                    .iter()
                    .zip(strides.iter())
                    .map(|(&g, &s)| g as u64 * s)
                    .sum();
                let slot = &mut class_of[code as usize];
                if *slot == u32::MAX {
                    *slot = n_classes as u32;
                    sigs.extend_from_slice(sig);
                }
                *slot as usize
            }
            Grouper::Coded { strides, map } => {
                let code: u64 = sig
                    .iter()
                    .zip(strides.iter())
                    .map(|(&g, &s)| g as u64 * s)
                    .sum();
                *map.entry(code).or_insert_with(|| {
                    sigs.extend_from_slice(sig);
                    n_classes as u32
                }) as usize
            }
            Grouper::Wide { map } => *map.entry(sig.to_vec()).or_insert_with(|| {
                sigs.extend_from_slice(sig);
                n_classes as u32
            }) as usize,
        }
    }
}

/// The equivalence classes of one full-domain lattice node: per-class
/// group signatures plus class sizes. Classes carry no row lists —
/// the k-anonymity check only needs sizes, and the rollup only needs
/// signatures.
pub struct Partition {
    /// Group count per signature component (the lattice node's
    /// per-attribute group counts).
    dims: Vec<u32>,
    /// Flat `n_classes × dims.len()` class signatures.
    sigs: Vec<u32>,
    /// Rows per class.
    sizes: Vec<u64>,
}

impl Partition {
    /// Number of equivalence classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.sizes.len()
    }

    /// Smallest class size (0 for an empty table).
    pub fn min_size(&self) -> usize {
        self.sizes.iter().copied().min().unwrap_or(0) as usize
    }

    /// The signature of class `c`.
    #[inline]
    fn sig(&self, c: usize) -> &[u32] {
        let q = self.dims.len();
        &self.sigs[c * q..(c + 1) * q]
    }

    /// Group the rows of `matrix` under per-attribute recode `tables`
    /// (one table per matrix column, i.e. the lattice node's levels).
    /// O(n · q) — the base-case build used when no finer partition is
    /// available to roll up from.
    pub fn build(matrix: &ValueMatrix, tables: &[&LevelTable]) -> Partition {
        let q = matrix.width();
        debug_assert_eq!(q, tables.len());
        let n = matrix.n_rows();
        let dims: Vec<u32> = tables.iter().map(|t| t.n_groups).collect();
        // dense tier: fold each row's group vector into a u64 code and
        // intern through the epoch-stamped scratch — one probe per
        // row, no hashing and no per-build table clear
        let mut strides = Vec::with_capacity(q);
        let mut space: u64 = 1;
        let mut overflow = false;
        for &d in &dims {
            strides.push(space);
            match space.checked_mul(d.max(1) as u64) {
                Some(p) => space = p,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if !overflow && space <= DENSE_SCRATCH_MAX && n <= SCRATCH_CLASS_MAX {
            return ROLLUP_SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                scratch.begin(space as usize);
                let mut part = Partition {
                    dims,
                    sigs: Vec::new(),
                    sizes: Vec::new(),
                };
                for row in 0..n {
                    let vals = matrix.row(row);
                    let mut code = 0u64;
                    for (pos, (&v, &st)) in vals.iter().zip(&strides).enumerate() {
                        code += tables[pos].groups[v as usize] as u64 * st;
                    }
                    let next = part.sizes.len();
                    let idx = scratch.probe(code as usize, next);
                    if idx == next {
                        part.sizes.push(1);
                        for (pos, &v) in vals.iter().enumerate() {
                            part.sigs.push(tables[pos].groups[v as usize]);
                        }
                    } else {
                        part.sizes[idx] += 1;
                    }
                }
                part
            });
        }
        let mut grouper = Grouper::new(&dims, n);
        let mut part = Partition {
            dims,
            sigs: Vec::new(),
            sizes: Vec::new(),
        };
        let mut buf = vec![0u32; q];
        for row in 0..n {
            for (pos, &v) in matrix.row(row).iter().enumerate() {
                buf[pos] = tables[pos].groups[v as usize];
            }
            let idx = grouper.intern(&buf, &mut part.sigs, part.sizes.len());
            if idx == part.sizes.len() {
                part.sizes.push(1);
            } else {
                part.sizes[idx] += 1;
            }
        }
        part
    }

    /// Group the rows of a single matrix column under `table` — the
    /// size-1 QI-subset partition Incognito's pruning stage rolls up
    /// level by level. O(n).
    pub fn build_column(matrix: &ValueMatrix, pos: usize, table: &LevelTable) -> Partition {
        let n = matrix.n_rows();
        let mut counts = vec![0u64; table.n_groups as usize];
        for row in 0..n {
            counts[table.groups[matrix.row(row)[pos] as usize] as usize] += 1;
        }
        let mut part = Partition {
            dims: vec![table.n_groups],
            sigs: Vec::new(),
            sizes: Vec::new(),
        };
        for (g, &c) in counts.iter().enumerate() {
            if c > 0 {
                part.sigs.push(g as u32);
                part.sizes.push(c);
            }
        }
        part
    }

    /// Raise signature component `pos` through `merge` (group id at
    /// the current level → group id one level up, `new_dim` groups),
    /// coalescing classes whose signatures become equal. O(#classes ·
    /// q) — no row is touched. The resulting partition is exactly what
    /// [`Partition::build`] would produce at the coarser node.
    ///
    /// When the coarser node's code space fits the dense-scratch
    /// ceiling, grouping goes through a thread-local epoch-stamped
    /// code table — one direct probe per class, no hashing and no
    /// per-rollup clearing. The class numbering (first-encounter
    /// order) is identical in every tier.
    pub fn rollup(&self, pos: usize, merge: &[u32], new_dim: u32) -> Partition {
        let q = self.dims.len();
        let mut dims = self.dims.clone();
        dims[pos] = new_dim;
        let mut strides = Vec::with_capacity(q);
        let mut space: u64 = 1;
        let mut overflow = false;
        for &d in &dims {
            strides.push(space);
            match space.checked_mul(d.max(1) as u64) {
                Some(p) => space = p,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if !overflow && space <= DENSE_SCRATCH_MAX && self.n_classes() <= SCRATCH_CLASS_MAX {
            return ROLLUP_SCRATCH.with(|s| {
                self.rollup_dense(
                    pos,
                    merge,
                    dims,
                    &strides,
                    space as usize,
                    &mut s.borrow_mut(),
                )
            });
        }
        let mut grouper = Grouper::new(&dims, self.n_classes());
        let mut out = Partition {
            dims,
            sigs: Vec::new(),
            sizes: Vec::new(),
        };
        let mut buf = vec![0u32; q];
        for c in 0..self.n_classes() {
            buf.copy_from_slice(self.sig(c));
            buf[pos] = merge[buf[pos] as usize];
            let idx = grouper.intern(&buf, &mut out.sigs, out.sizes.len());
            if idx == out.sizes.len() {
                out.sizes.push(self.sizes[c]);
            } else {
                out.sizes[idx] += self.sizes[c];
            }
        }
        out
    }

    /// The dense-scratch rollup tier: group classes by folded `u64`
    /// code through a direct-probe table.
    fn rollup_dense(
        &self,
        pos: usize,
        merge: &[u32],
        dims: Vec<u32>,
        strides: &[u64],
        space: usize,
        scratch: &mut RollupScratch,
    ) -> Partition {
        let q = dims.len();
        scratch.begin(space);
        let mut out = Partition {
            dims,
            sigs: Vec::with_capacity(self.sigs.len()),
            sizes: Vec::with_capacity(self.sizes.len()),
        };
        let pos_stride = strides[pos];
        // process classes in small batches: all of a batch's codes
        // (and so all of its scratch addresses) are computed before
        // the first probe, letting the out-of-order core overlap the
        // probes' cache misses instead of serializing them
        const BATCH: usize = 16;
        let mut codes = [0u64; BATCH];
        let mut merged_of = [0u32; BATCH];
        let n = self.n_classes();
        let mut base = 0;
        while base < n {
            let len = BATCH.min(n - base);
            for (j, (code, merged_slot)) in
                codes.iter_mut().zip(&mut merged_of).enumerate().take(len)
            {
                let sig = self.sig(base + j);
                let merged = merge[sig[pos] as usize];
                // branch-free fold: encode with the original
                // component, then swap in the merged one (exact under
                // wrapping — the swap may underflow transiently, the
                // sum never does)
                let mut folded = 0u64;
                for (&g, &st) in sig.iter().zip(strides) {
                    folded += g as u64 * st;
                }
                *code = folded
                    .wrapping_add((merged as u64).wrapping_mul(pos_stride))
                    .wrapping_sub((sig[pos] as u64).wrapping_mul(pos_stride));
                *merged_slot = merged;
            }
            for j in 0..len {
                let c = base + j;
                let next = out.sizes.len();
                let idx = scratch.probe(codes[j] as usize, next);
                if idx == next {
                    out.sizes.push(self.sizes[c]);
                    out.sigs.extend_from_slice(self.sig(c));
                    let sig_pos = out.sigs.len() - q + pos;
                    out.sigs[sig_pos] = merged_of[j];
                } else {
                    out.sizes[idx] += self.sizes[c];
                }
            }
            base += len;
        }
        out
    }
}

/// Ceiling of the dense rollup scratch (codes, so `space × 8` bytes of
/// thread-local memory at most — the table persists across rollups and
/// is never cleared, only re-stamped).
const DENSE_SCRATCH_MAX: u64 = 1 << 22;

thread_local! {
    static ROLLUP_SCRATCH: std::cell::RefCell<RollupScratch> =
        std::cell::RefCell::new(RollupScratch::default());
}

/// Epoch-stamped `code → class` table: `begin` bumps the epoch instead
/// of clearing, so a rollup touches only the codes it actually
/// produces. Epoch (top 8 bits) and class (low 24 bits) share one
/// `u32` slot — a probe costs a single random memory access and the
/// table stays half the size of split arrays, which matters because
/// the probes are latency-bound cache misses. The 8-bit epoch wraps
/// every 255 rollups, forcing a cheap sequential clear.
#[derive(Default)]
struct RollupScratch {
    slots: Vec<u32>,
    epoch: u32,
}

/// Widest class index the packed scratch slot can hold.
const SCRATCH_CLASS_MAX: usize = (1 << 24) - 1;

impl RollupScratch {
    fn begin(&mut self, space: usize) {
        if self.slots.len() < space {
            self.slots.resize(space, 0);
        }
        if self.epoch == 255 {
            self.slots.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Class index stored at `code`, or `next` (stored) when unseen
    /// this epoch.
    #[inline]
    fn probe(&mut self, code: usize, next: usize) -> usize {
        let slot = self.slots[code];
        if slot >> 24 == self.epoch {
            (slot & 0x00ff_ffff) as usize
        } else {
            self.slots[code] = (self.epoch << 24) | next as u32;
            next
        }
    }
}

/// Row-resident partition for Top-down specialization: equivalence
/// classes under a full-subtree cut, carrying per-class row lists so a
/// candidate split touches only the rows of the classes it splits.
pub struct RowPartition {
    width: usize,
    /// Row → class index.
    class_of: Vec<u32>,
    /// Class → rows (row indices in ascending order).
    rows_of: Vec<Vec<u32>>,
    /// Flat `n_classes × width` cut-node signatures.
    sigs: Vec<NodeId>,
}

impl RowPartition {
    /// The fully generalized starting partition: one class holding
    /// every row, signed by the hierarchy roots.
    pub fn root_cut(n_rows: usize, hierarchies: &[Hierarchy]) -> RowPartition {
        RowPartition {
            width: hierarchies.len(),
            class_of: vec![0; n_rows],
            rows_of: vec![(0..n_rows as u32).collect()],
            sigs: hierarchies.iter().map(|h| h.root()).collect(),
        }
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.rows_of.len()
    }

    /// Indices of the classes whose `pos` signature is `node` — the
    /// classes a split of `node` redistributes.
    fn affected(&self, pos: usize, node: NodeId) -> Vec<usize> {
        (0..self.n_classes())
            .filter(|&c| self.sigs[c * self.width + pos] == node)
            .collect()
    }

    /// Would specializing `cand` (attribute `pos`) into its children
    /// keep every class at size ≥ `k`? Touches only the rows of the
    /// affected classes; unaffected classes cannot shrink. Returns the
    /// verdict and the number of rows inspected.
    pub fn split_is_valid(
        &self,
        matrix: &ValueMatrix,
        pos: usize,
        cand: NodeId,
        h: &Hierarchy,
        k: usize,
    ) -> (bool, u64) {
        let children = h.children(cand);
        let child_ix = child_index(h, cand);
        let mut touched = 0u64;
        let mut bucket = vec![0u64; children.len()];
        for c in self.affected(pos, cand) {
            bucket.iter_mut().for_each(|b| *b = 0);
            for &row in &self.rows_of[c] {
                let v = matrix.row(row as usize)[pos];
                bucket[child_ix[&v]] += 1;
            }
            touched += self.rows_of[c].len() as u64;
            if bucket.iter().any(|&b| b > 0 && (b as usize) < k) {
                return (false, touched);
            }
        }
        (true, touched)
    }

    /// Apply the specialization of `cand` (attribute `pos`): each
    /// affected class splits into one class per child with rows, in
    /// child order; the first such class reuses the old class slot.
    pub fn apply_split(&mut self, matrix: &ValueMatrix, pos: usize, cand: NodeId, h: &Hierarchy) {
        let children = h.children(cand);
        let child_ix = child_index(h, cand);
        for c in self.affected(pos, cand) {
            let rows = std::mem::take(&mut self.rows_of[c]);
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); children.len()];
            for row in rows {
                let v = matrix.row(row as usize)[pos];
                buckets[child_ix[&v]].push(row);
            }
            let sig_base = c * self.width;
            let old_sig: Vec<NodeId> = self.sigs[sig_base..sig_base + self.width].to_vec();
            let mut reused = false;
            for (ci, rows) in buckets.into_iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                if !reused {
                    reused = true;
                    self.sigs[sig_base + pos] = children[ci];
                    self.rows_of[c] = rows;
                    // class index unchanged: class_of already points here
                } else {
                    let idx = self.rows_of.len() as u32;
                    for &row in &rows {
                        self.class_of[row as usize] = idx;
                    }
                    let mut sig = old_sig.clone();
                    sig[pos] = children[ci];
                    self.sigs.extend_from_slice(&sig);
                    self.rows_of.push(rows);
                }
            }
        }
    }
}

/// Value id → child index, over the leaves under `cand`.
fn child_index(h: &Hierarchy, cand: NodeId) -> FxHashMap<u32, usize> {
    let mut map = FxHashMap::default();
    for (ci, &ch) in h.children(cand).iter().enumerate() {
        for v in h.leaves_under(ch) {
            map.insert(v, ci);
        }
    }
    map
}

/// Class signatures and sizes under a full-subtree cut, without row
/// lists — Bottom-up generalization only ever needs which cut-node
/// combinations exist, how many rows each holds, and how they merge
/// when a cut moves up.
pub struct CutClasses {
    width: usize,
    /// Flat `n_classes × width` cut-node signatures (raw `NodeId`
    /// values).
    sigs: Vec<u32>,
    /// Rows per class.
    sizes: Vec<u64>,
}

impl CutClasses {
    /// Group rows by their leaf signature — the starting partition of
    /// Bottom-up's leaf cut. O(n · q), done once per run.
    pub fn leaf_cut(
        matrix: &ValueMatrix,
        hierarchies: &[Hierarchy],
        domains: &[usize],
    ) -> CutClasses {
        let q = matrix.width();
        let n = matrix.n_rows();
        let dims: Vec<u32> = domains.iter().map(|&d| d.max(1) as u32).collect();
        let mut grouper = Grouper::new(&dims, n);
        let mut sigs: Vec<u32> = Vec::new();
        let mut sizes: Vec<u64> = Vec::new();
        for row in 0..n {
            let idx = grouper.intern(matrix.row(row), &mut sigs, sizes.len());
            if idx == sizes.len() {
                sizes.push(1);
            } else {
                sizes[idx] += 1;
            }
        }
        // signatures interned as value ids; rewrite them to leaf nodes
        for (i, s) in sigs.iter_mut().enumerate() {
            *s = hierarchies[i % q].leaf(*s).0;
        }
        CutClasses {
            width: q,
            sigs,
            sizes,
        }
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.sizes.len()
    }

    /// The cut node of class `c` at attribute `pos`.
    #[inline]
    pub fn node(&self, c: usize, pos: usize) -> NodeId {
        NodeId(self.sigs[c * self.width + pos])
    }

    /// Indices of classes smaller than `k`.
    pub fn violating(&self, k: usize) -> Vec<usize> {
        (0..self.n_classes())
            .filter(|&c| (self.sizes[c] as usize) < k)
            .collect()
    }

    /// Re-partition after generalizing attribute `pos`'s cut to
    /// `target`: signatures whose `pos` node sits under `target` remap
    /// to it, and classes with equal signatures coalesce. O(#classes ·
    /// q) — the incremental counterpart of re-grouping all rows.
    pub fn remap(&self, pos: usize, h: &Hierarchy, target: NodeId) -> CutClasses {
        let mut map: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut out = CutClasses {
            width: self.width,
            sigs: Vec::new(),
            sizes: Vec::new(),
        };
        for c in 0..self.n_classes() {
            let mut sig = self.sigs[c * self.width..(c + 1) * self.width].to_vec();
            if h.is_ancestor_or_self(target, NodeId(sig[pos])) {
                sig[pos] = target.0;
            }
            match map.entry(sig) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    out.sizes[*e.get() as usize] += self.sizes[c];
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let idx = out.sizes.len() as u32;
                    out.sigs.extend_from_slice(e.key());
                    out.sizes.push(self.sizes[c]);
                    e.insert(idx);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{min_class_size_matrix, RelationalInput};
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    fn input(t: &RtTable) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k: 2,
        }
    }

    #[test]
    fn recode_tables_match_generalize_grouping() {
        let t = table();
        let i = input(&t);
        let rt = RecodeTables::build(&i.hierarchies);
        for (pos, h) in i.hierarchies.iter().enumerate() {
            for lvl in 0..=h.height() {
                let lt = rt.table(pos, lvl);
                // same group ⇔ same generalized node
                let dom = lt.groups.len();
                for a in 0..dom as u32 {
                    for b in 0..dom as u32 {
                        assert_eq!(
                            lt.groups[a as usize] == lt.groups[b as usize],
                            h.generalize(a, lvl) == h.generalize(b, lvl),
                            "pos={pos} lvl={lvl} a={a} b={b}"
                        );
                    }
                }
            }
            // merge tables compose: fine groups map into coarse groups
            for lvl in 0..h.height() {
                let fine = rt.table(pos, lvl);
                let coarse = rt.table(pos, lvl + 1);
                let merge = rt.merge(pos, lvl);
                for v in 0..fine.groups.len() {
                    assert_eq!(merge[fine.groups[v] as usize], coarse.groups[v]);
                }
            }
        }
    }

    #[test]
    fn partition_build_matches_min_class_size() {
        let t = table();
        let i = input(&t);
        let matrix = i.value_matrix();
        let domains = [t.domain_size(0), t.domain_size(1)];
        let rt = RecodeTables::build(&i.hierarchies);
        let heights: Vec<u32> = i.hierarchies.iter().map(|h| h.height()).collect();
        for l0 in 0..=heights[0] {
            for l1 in 0..=heights[1] {
                let p = Partition::build(&matrix, &[rt.table(0, l0), rt.table(1, l1)]);
                let expected = min_class_size_matrix(&matrix, &domains, |pos, v| {
                    i.hierarchies[pos].generalize(v, [l0, l1][pos])
                });
                assert_eq!(p.min_size(), expected, "levels ({l0},{l1})");
                let total: u64 = (0..p.n_classes()).map(|c| p.sizes[c]).sum();
                assert_eq!(total, 8, "partition covers every row");
            }
        }
    }

    #[test]
    fn rollup_equals_rebuild() {
        let t = table();
        let i = input(&t);
        let matrix = i.value_matrix();
        let rt = RecodeTables::build(&i.hierarchies);
        let heights: Vec<u32> = i.hierarchies.iter().map(|h| h.height()).collect();
        for l0 in 0..=heights[0] {
            for l1 in 0..=heights[1] {
                let p = Partition::build(&matrix, &[rt.table(0, l0), rt.table(1, l1)]);
                for pos in 0..2 {
                    let lvl = [l0, l1][pos];
                    if lvl >= heights[pos] {
                        continue;
                    }
                    let rolled = p.rollup(pos, rt.merge(pos, lvl), rt.table(pos, lvl + 1).n_groups);
                    let rebuilt = Partition::build(
                        &matrix,
                        &[
                            rt.table(0, if pos == 0 { l0 + 1 } else { l0 }),
                            rt.table(1, if pos == 1 { l1 + 1 } else { l1 }),
                        ],
                    );
                    assert_eq!(rolled.min_size(), rebuilt.min_size());
                    assert_eq!(rolled.n_classes(), rebuilt.n_classes());
                    let mut a: Vec<u64> = rolled.sizes.clone();
                    let mut b: Vec<u64> = rebuilt.sizes.clone();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "same multiset of class sizes");
                }
            }
        }
    }

    #[test]
    fn column_partition_rolls_up_to_attribute_min_level() {
        let t = table();
        let i = input(&t);
        let matrix = i.value_matrix();
        let rt = RecodeTables::build(&i.hierarchies);
        // attribute 0 has 8 distinct ages: level 0 min class is 1
        let p = Partition::build_column(&matrix, 0, rt.table(0, 0));
        assert_eq!(p.min_size(), 1);
        assert_eq!(p.n_classes(), 8);
        // rolling to the root gives a single class of 8
        let h0 = &i.hierarchies[0];
        let mut p = p;
        for lvl in 0..h0.height() {
            p = p.rollup(0, rt.merge(0, lvl), rt.table(0, lvl + 1).n_groups);
        }
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.min_size(), 8);
    }

    #[test]
    fn row_partition_split_tracks_classes() {
        let t = table();
        let i = input(&t);
        let matrix = i.value_matrix();
        let mut p = RowPartition::root_cut(t.n_rows(), &i.hierarchies);
        assert_eq!(p.n_classes(), 1);
        let h0 = &i.hierarchies[0];
        let root0 = h0.root();
        let (ok, touched) = p.split_is_valid(&matrix, 0, root0, h0, 2);
        assert!(ok);
        assert_eq!(touched, 8);
        // an infeasible k refuses the same split
        let (bad, _) = p.split_is_valid(&matrix, 0, root0, h0, 5);
        assert!(!bad);
        p.apply_split(&matrix, 0, root0, h0);
        assert_eq!(p.n_classes(), h0.children(root0).len());
        let covered: usize = p.rows_of.iter().map(Vec::len).sum();
        assert_eq!(covered, 8);
        // class_of agrees with rows_of
        for (c, rows) in p.rows_of.iter().enumerate() {
            for &r in rows {
                assert_eq!(p.class_of[r as usize] as usize, c);
            }
        }
    }

    #[test]
    fn cut_classes_leaf_build_and_remap() {
        let t = table();
        let i = input(&t);
        let matrix = i.value_matrix();
        let domains = [t.domain_size(0), t.domain_size(1)];
        let classes = CutClasses::leaf_cut(&matrix, &i.hierarchies, &domains);
        assert_eq!(classes.n_classes(), 8, "all rows distinct at the leaf cut");
        assert_eq!(classes.violating(2).len(), 8);
        // generalizing Edu to the root merges along the Age axis only
        let h1 = &i.hierarchies[1];
        let remapped = classes.remap(1, h1, h1.root());
        assert_eq!(remapped.n_classes(), 8, "ages still distinct");
        // generalizing Age to the root leaves the two Edu classes
        let h0 = &i.hierarchies[0];
        let remapped = classes.remap(0, h0, h0.root());
        assert_eq!(remapped.n_classes(), 2);
        assert!(remapped.violating(4).is_empty());
        let total: u64 = remapped.sizes.iter().sum();
        assert_eq!(total, 8);
    }
}
