//! Shared types and helpers for the relational algorithms.

use secreta_data::hash::FxHashMap;
use secreta_data::RtTable;
use secreta_hierarchy::{Hierarchy, NodeId};
use secreta_metrics::{AnonTable, PhaseTimes};
use std::fmt;

/// Errors raised by relational anonymization.
#[derive(Debug, PartialEq, Eq)]
pub enum RelError {
    /// `k` exceeds the number of records: no generalization can form a
    /// class of size `k`.
    Infeasible {
        /// Requested protection level.
        k: usize,
        /// Records available.
        n: usize,
    },
    /// Input is structurally unusable (no QI attributes, mismatched
    /// hierarchies, k = 0, ...).
    BadInput(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Infeasible { k, n } => {
                write!(f, "k-anonymity infeasible: k={k} but only {n} records")
            }
            RelError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Input to every relational algorithm.
pub struct RelationalInput<'a> {
    /// The dataset.
    pub table: &'a RtTable,
    /// Quasi-identifier attribute indices (must be relational).
    pub qi_attrs: Vec<usize>,
    /// Generalization hierarchies, parallel to `qi_attrs`.
    pub hierarchies: Vec<Hierarchy>,
    /// Protection level: each record indistinguishable from ≥ k−1
    /// others on the QI attributes.
    pub k: usize,
}

impl<'a> RelationalInput<'a> {
    /// Per-QI-attribute value frequencies plus their totals, for
    /// GCP-weighted node selection. The count walks each column in
    /// fixed-size blocks ([`RtTable::column_chunks`] at the process
    /// chunk size) so the setup pass touches memory chunk-by-chunk
    /// regardless of table size.
    pub fn qi_value_counts(&self) -> (Vec<Vec<u64>>, Vec<u64>) {
        let chunk_rows = secreta_data::chunk::chunk_rows();
        let counts: Vec<Vec<u64>> = self
            .qi_attrs
            .iter()
            .map(|&attr| {
                let mut c = vec![0u64; self.table.domain_size(attr)];
                for (_, block) in self.table.column_chunks(attr, chunk_rows) {
                    for v in block {
                        c[v.index()] += 1;
                    }
                }
                c
            })
            .collect();
        let totals = counts.iter().map(|c| c.iter().sum()).collect();
        (counts, totals)
    }

    /// Validate structural invariants shared by all algorithms.
    pub fn validate(&self) -> Result<(), RelError> {
        if self.k == 0 {
            return Err(RelError::BadInput("k must be at least 1".into()));
        }
        if self.qi_attrs.is_empty() {
            return Err(RelError::BadInput("no quasi-identifier attributes".into()));
        }
        if self.qi_attrs.len() != self.hierarchies.len() {
            return Err(RelError::BadInput(format!(
                "{} QI attributes but {} hierarchies",
                self.qi_attrs.len(),
                self.hierarchies.len()
            )));
        }
        for (pos, &attr) in self.qi_attrs.iter().enumerate() {
            let a = self
                .table
                .schema()
                .attribute(attr)
                .ok_or_else(|| RelError::BadInput(format!("attribute {attr} out of range")))?;
            if !a.kind.is_relational() {
                return Err(RelError::BadInput(format!(
                    "attribute {:?} is not relational",
                    a.name
                )));
            }
            if self.hierarchies[pos].n_leaves() != self.table.domain_size(attr) {
                return Err(RelError::BadInput(format!(
                    "hierarchy for {:?} covers {} values, domain has {}",
                    a.name,
                    self.hierarchies[pos].n_leaves(),
                    self.table.domain_size(attr)
                )));
            }
        }
        if self.k > self.table.n_rows() {
            return Err(RelError::Infeasible {
                k: self.k,
                n: self.table.n_rows(),
            });
        }
        Ok(())
    }

    /// Row-major `n_rows × qi_attrs.len()` matrix of QI value ids.
    ///
    /// The greedy argmin loops of the clustering algorithms scan every
    /// row's QI tuple many thousands of times; materializing the ids
    /// once replaces repeated `table.value()` virtual-layout lookups
    /// with a dense sequential read.
    pub fn value_matrix(&self) -> ValueMatrix {
        let q = self.qi_attrs.len();
        let n = self.table.n_rows();
        let mut values = Vec::with_capacity(n * q);
        for row in 0..n {
            for &attr in &self.qi_attrs {
                values.push(self.table.value(row, attr).0);
            }
        }
        ValueMatrix { values, width: q }
    }

    /// Row-major `n_rows × qi_attrs.len()` matrix of leaf [`NodeId`]s
    /// (each QI value resolved through its hierarchy).
    pub fn leaf_matrix(&self) -> LeafMatrix {
        let q = self.qi_attrs.len();
        let n = self.table.n_rows();
        let mut leaves = Vec::with_capacity(n * q);
        for row in 0..n {
            for (pos, &attr) in self.qi_attrs.iter().enumerate() {
                leaves.push(self.hierarchies[pos].leaf(self.table.value(row, attr).0));
            }
        }
        LeafMatrix { leaves, width: q }
    }
}

/// Dense row-major matrix of QI value ids (see
/// [`RelationalInput::value_matrix`]).
pub struct ValueMatrix {
    values: Vec<u32>,
    width: usize,
}

impl ValueMatrix {
    /// The QI value ids of `row`, in `qi_attrs` order.
    #[inline]
    pub fn row(&self, row: usize) -> &[u32] {
        &self.values[row * self.width..(row + 1) * self.width]
    }

    /// Number of QI attributes per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.values.len().checked_div(self.width).unwrap_or(0)
    }

    /// A width-1 copy of column `pos`, for per-attribute checks.
    ///
    /// Incognito's size-1 subset pruning probes one attribute at many
    /// levels; extracting the column once keeps the per-level checks
    /// off the full-width matrix (and off the table entirely).
    pub fn column(&self, pos: usize) -> ValueMatrix {
        ValueMatrix {
            values: (0..self.n_rows()).map(|r| self.row(r)[pos]).collect(),
            width: 1,
        }
    }
}

/// Dense row-major matrix of QI leaf nodes (see
/// [`RelationalInput::leaf_matrix`]).
pub struct LeafMatrix {
    leaves: Vec<NodeId>,
    width: usize,
}

impl LeafMatrix {
    /// The QI leaf nodes of `row`, in `qi_attrs` order.
    #[inline]
    pub fn row(&self, row: usize) -> &[NodeId] {
        &self.leaves[row * self.width..(row + 1) * self.width]
    }

    /// Number of QI attributes per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Result of a relational run: the anonymized table and phase timings.
#[derive(Debug, Clone)]
pub struct RelOutput {
    /// Generalized columns for the QI attributes.
    pub anon: AnonTable,
    /// Per-phase wall-clock times.
    pub phases: PhaseTimes,
}

/// Algorithm selector used by the SECRETA framework's configuration
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationalAlgorithm {
    /// Full-domain lattice search (LeFevre et al.).
    Incognito,
    /// Top-down specialization from the fully generalized cut.
    TopDown,
    /// Full-subtree bottom-up generalization from the leaf cut.
    BottomUp,
    /// Greedy k-member clustering with per-cluster LCA recoding.
    Cluster,
}

impl RelationalAlgorithm {
    /// Display name (as shown in the GUI's algorithm selectors).
    pub fn name(self) -> &'static str {
        match self {
            RelationalAlgorithm::Incognito => "Incognito",
            RelationalAlgorithm::TopDown => "Top-down",
            RelationalAlgorithm::BottomUp => "Full subtree bottom-up",
            RelationalAlgorithm::Cluster => "Cluster",
        }
    }

    /// All four algorithms, in the paper's listing order.
    pub fn all() -> [RelationalAlgorithm; 4] {
        [
            RelationalAlgorithm::Incognito,
            RelationalAlgorithm::Cluster,
            RelationalAlgorithm::TopDown,
            RelationalAlgorithm::BottomUp,
        ]
    }

    /// Run the selected algorithm. `seed` feeds Cluster's seed record
    /// selection; the other three are deterministic and ignore it.
    pub fn run(self, input: &RelationalInput, seed: u64) -> Result<RelOutput, RelError> {
        match self {
            RelationalAlgorithm::Incognito => crate::incognito::anonymize(input),
            RelationalAlgorithm::TopDown => crate::topdown::anonymize(input),
            RelationalAlgorithm::BottomUp => crate::bottomup::anonymize(input),
            RelationalAlgorithm::Cluster => crate::cluster::anonymize(input, seed),
        }
    }
}

impl fmt::Display for RelationalAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Minimum equivalence-class size when each QI attribute `a` recodes
/// value `v` to `recode(a_pos, v)`. The workhorse k-anonymity check of
/// Incognito/Top-down/Bottom-up.
pub fn min_class_size(
    table: &RtTable,
    qi_attrs: &[usize],
    recode: impl Fn(usize, u32) -> NodeId,
) -> usize {
    let q = qi_attrs.len();
    let n = table.n_rows();
    let mut values = Vec::with_capacity(n * q);
    for row in 0..n {
        for &attr in qi_attrs {
            values.push(table.value(row, attr).0);
        }
    }
    let matrix = ValueMatrix { values, width: q };
    let domains: Vec<usize> = qi_attrs.iter().map(|&a| table.domain_size(a)).collect();
    min_class_size_matrix(&matrix, &domains, recode)
}

/// [`min_class_size`] over a prebuilt [`ValueMatrix`].
///
/// The lattice/specialization searches call the k-anonymity check once
/// per candidate recoding; building the matrix once per run and
/// passing it here removes the per-candidate `table.value()` pass.
/// `domains[pos]` is the domain size of `qi_attrs[pos]`.
///
/// Rows are bucketed by a dense per-attribute group code folded into a
/// single `u64` — no per-row allocation, and when the code space is
/// small the counts live in a flat vector instead of a hash map.
pub fn min_class_size_matrix(
    matrix: &ValueMatrix,
    domains: &[usize],
    recode: impl Fn(usize, u32) -> NodeId,
) -> usize {
    let n = matrix.values.len().checked_div(matrix.width).unwrap_or(0);
    if n == 0 {
        return 0;
    }
    // Per attribute: value id -> dense group index (domains are small,
    // rows are many), plus the number of distinct groups.
    let mut dense: Vec<Vec<u64>> = Vec::with_capacity(domains.len());
    let mut strides: Vec<u64> = Vec::with_capacity(domains.len());
    let mut code_space: u64 = 1;
    let mut overflow = false;
    for (pos, &dom) in domains.iter().enumerate() {
        let mut ids: FxHashMap<NodeId, u64> = FxHashMap::default();
        let mut map = Vec::with_capacity(dom);
        for v in 0..dom as u32 {
            let node = recode(pos, v);
            let next = ids.len() as u64;
            map.push(*ids.entry(node).or_insert(next));
        }
        strides.push(code_space);
        // once the code space overflows u64 the strides are unusable,
        // but the per-attribute group maps must still cover every
        // column: the signature fallback below reads all of them
        if !overflow {
            match code_space.checked_mul(ids.len().max(1) as u64) {
                Some(p) => code_space = p,
                None => overflow = true,
            }
        }
        dense.push(map);
    }

    let code_of = |row: usize| -> u64 {
        let vals = matrix.row(row);
        let mut code = 0u64;
        for (pos, &v) in vals.iter().enumerate() {
            code += dense[pos][v as usize] * strides[pos];
        }
        code
    };

    if overflow {
        // astronomically wide code space: group on the full signature
        let mut groups: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        for row in 0..n {
            let sig: Vec<u64> = matrix
                .row(row)
                .iter()
                .enumerate()
                .map(|(pos, &v)| dense[pos][v as usize])
                .collect();
            *groups.entry(sig).or_insert(0) += 1;
        }
        return groups.values().copied().min().unwrap_or(0);
    }

    if code_space <= (n as u64) * 4 && code_space <= (1 << 22) {
        // dense counting: one flat vector, no hashing at all
        let mut counts = vec![0usize; code_space as usize];
        for row in 0..n {
            counts[code_of(row) as usize] += 1;
        }
        counts.into_iter().filter(|&c| c > 0).min().unwrap_or(0)
    } else {
        let mut groups: FxHashMap<u64, usize> = FxHashMap::default();
        for row in 0..n {
            *groups.entry(code_of(row)).or_insert(0) += 1;
        }
        groups.values().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30", "BSc"], &["a"]).unwrap();
        t.push_row(&["35", "BSc"], &["b"]).unwrap();
        t.push_row(&["60", "MSc"], &["a"]).unwrap();
        t.push_row(&["65", "MSc"], &["b"]).unwrap();
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        let h0 = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let h1 = auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap();
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![h0, h1],
            k,
        }
    }

    #[test]
    fn validate_accepts_good_input() {
        let t = table();
        assert!(input(&t, 2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let t = table();
        let mut i = input(&t, 0);
        assert!(matches!(i.validate(), Err(RelError::BadInput(_))));
        i.k = 9;
        assert_eq!(i.validate(), Err(RelError::Infeasible { k: 9, n: 4 }));
        i.k = 2;
        i.qi_attrs = vec![];
        i.hierarchies = vec![];
        assert!(matches!(i.validate(), Err(RelError::BadInput(_))));

        let mut i2 = input(&t, 2);
        i2.qi_attrs = vec![2, 1]; // transaction attr as QI
        assert!(matches!(i2.validate(), Err(RelError::BadInput(_))));

        let mut i3 = input(&t, 2);
        i3.hierarchies.pop();
        assert!(matches!(i3.validate(), Err(RelError::BadInput(_))));
    }

    #[test]
    fn min_class_size_leaf_recoding() {
        let t = table();
        let i = input(&t, 2);
        let hs = i.hierarchies.clone();
        // identity recoding: all rows distinct -> min class 1
        let m = min_class_size(&t, &i.qi_attrs, |pos, v| hs[pos].leaf(v));
        assert_eq!(m, 1);
        // full generalization: one class of 4
        let m = min_class_size(&t, &i.qi_attrs, |pos, _| hs[pos].root());
        assert_eq!(m, 4);
        // generalize Age only to root: classes by Edu -> 2 and 2
        let m = min_class_size(&t, &i.qi_attrs, |pos, v| {
            if pos == 0 {
                hs[0].root()
            } else {
                hs[1].leaf(v)
            }
        });
        assert_eq!(m, 2);
    }

    #[test]
    fn value_matrix_column_extracts_attribute() {
        let t = table();
        let i = input(&t, 2);
        let matrix = i.value_matrix();
        assert_eq!(matrix.n_rows(), 4);
        for pos in 0..2 {
            let col = matrix.column(pos);
            assert_eq!(col.width(), 1);
            assert_eq!(col.n_rows(), 4);
            for row in 0..4 {
                assert_eq!(col.row(row)[0], matrix.row(row)[pos]);
            }
        }
    }

    #[test]
    fn min_class_size_code_space_overflow_falls_back_to_signatures() {
        // 12 attributes with 64 distinct groups each: the folded code
        // space overflows u64 at the 11th attribute (64^11 = 2^66),
        // forcing the full-signature hash-map branch — with a column
        // *past* the overflow point, so the fallback must still have a
        // group map for every attribute.
        let q = 12;
        let dom = 64usize;
        let domains = vec![dom; q];
        let mut values = Vec::new();
        // rows 0/1 and 2/3 are duplicates, row 4 is unique in its
        // last attribute -> min class size 1; with the last column
        // ignored rows 2/3/4 collapse -> min class size 2
        for row in [
            vec![1u32; q],
            vec![1u32; q],
            {
                let mut r = vec![2u32; q];
                r[q - 1] = 7;
                r
            },
            {
                let mut r = vec![2u32; q];
                r[q - 1] = 7;
                r
            },
            {
                let mut r = vec![2u32; q];
                r[q - 1] = 9;
                r
            },
        ] {
            values.extend(row);
        }
        let matrix = ValueMatrix { values, width: q };
        // identity recoding keeps all 64 groups per attribute
        let m = min_class_size_matrix(&matrix, &domains, |_, v| NodeId(v));
        assert_eq!(m, 1);
        // collapsing the final attribute still overflows on the first
        // eleven and exercises the merged counts
        let m = min_class_size_matrix(&matrix, &domains, |pos, v| {
            if pos == q - 1 {
                NodeId(0)
            } else {
                NodeId(v)
            }
        });
        assert_eq!(m, 2);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(RelationalAlgorithm::Incognito.to_string(), "Incognito");
        assert_eq!(RelationalAlgorithm::all().len(), 4);
    }
}
