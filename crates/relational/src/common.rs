//! Shared types and helpers for the relational algorithms.

use secreta_data::hash::FxHashMap;
use secreta_data::RtTable;
use secreta_hierarchy::{Hierarchy, NodeId};
use secreta_metrics::{AnonTable, PhaseTimes};
use std::fmt;

/// Errors raised by relational anonymization.
#[derive(Debug, PartialEq, Eq)]
pub enum RelError {
    /// `k` exceeds the number of records: no generalization can form a
    /// class of size `k`.
    Infeasible {
        /// Requested protection level.
        k: usize,
        /// Records available.
        n: usize,
    },
    /// Input is structurally unusable (no QI attributes, mismatched
    /// hierarchies, k = 0, ...).
    BadInput(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Infeasible { k, n } => {
                write!(f, "k-anonymity infeasible: k={k} but only {n} records")
            }
            RelError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Input to every relational algorithm.
pub struct RelationalInput<'a> {
    /// The dataset.
    pub table: &'a RtTable,
    /// Quasi-identifier attribute indices (must be relational).
    pub qi_attrs: Vec<usize>,
    /// Generalization hierarchies, parallel to `qi_attrs`.
    pub hierarchies: Vec<Hierarchy>,
    /// Protection level: each record indistinguishable from ≥ k−1
    /// others on the QI attributes.
    pub k: usize,
}

impl<'a> RelationalInput<'a> {
    /// Validate structural invariants shared by all algorithms.
    pub fn validate(&self) -> Result<(), RelError> {
        if self.k == 0 {
            return Err(RelError::BadInput("k must be at least 1".into()));
        }
        if self.qi_attrs.is_empty() {
            return Err(RelError::BadInput("no quasi-identifier attributes".into()));
        }
        if self.qi_attrs.len() != self.hierarchies.len() {
            return Err(RelError::BadInput(format!(
                "{} QI attributes but {} hierarchies",
                self.qi_attrs.len(),
                self.hierarchies.len()
            )));
        }
        for (pos, &attr) in self.qi_attrs.iter().enumerate() {
            let a = self
                .table
                .schema()
                .attribute(attr)
                .ok_or_else(|| RelError::BadInput(format!("attribute {attr} out of range")))?;
            if !a.kind.is_relational() {
                return Err(RelError::BadInput(format!(
                    "attribute {:?} is not relational",
                    a.name
                )));
            }
            if self.hierarchies[pos].n_leaves() != self.table.domain_size(attr) {
                return Err(RelError::BadInput(format!(
                    "hierarchy for {:?} covers {} values, domain has {}",
                    a.name,
                    self.hierarchies[pos].n_leaves(),
                    self.table.domain_size(attr)
                )));
            }
        }
        if self.k > self.table.n_rows() {
            return Err(RelError::Infeasible {
                k: self.k,
                n: self.table.n_rows(),
            });
        }
        Ok(())
    }
}

/// Result of a relational run: the anonymized table and phase timings.
#[derive(Debug, Clone)]
pub struct RelOutput {
    /// Generalized columns for the QI attributes.
    pub anon: AnonTable,
    /// Per-phase wall-clock times.
    pub phases: PhaseTimes,
}

/// Algorithm selector used by the SECRETA framework's configuration
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationalAlgorithm {
    /// Full-domain lattice search (LeFevre et al.).
    Incognito,
    /// Top-down specialization from the fully generalized cut.
    TopDown,
    /// Full-subtree bottom-up generalization from the leaf cut.
    BottomUp,
    /// Greedy k-member clustering with per-cluster LCA recoding.
    Cluster,
}

impl RelationalAlgorithm {
    /// Display name (as shown in the GUI's algorithm selectors).
    pub fn name(self) -> &'static str {
        match self {
            RelationalAlgorithm::Incognito => "Incognito",
            RelationalAlgorithm::TopDown => "Top-down",
            RelationalAlgorithm::BottomUp => "Full subtree bottom-up",
            RelationalAlgorithm::Cluster => "Cluster",
        }
    }

    /// All four algorithms, in the paper's listing order.
    pub fn all() -> [RelationalAlgorithm; 4] {
        [
            RelationalAlgorithm::Incognito,
            RelationalAlgorithm::Cluster,
            RelationalAlgorithm::TopDown,
            RelationalAlgorithm::BottomUp,
        ]
    }

    /// Run the selected algorithm. `seed` feeds Cluster's seed record
    /// selection; the other three are deterministic and ignore it.
    pub fn run(self, input: &RelationalInput, seed: u64) -> Result<RelOutput, RelError> {
        match self {
            RelationalAlgorithm::Incognito => crate::incognito::anonymize(input),
            RelationalAlgorithm::TopDown => crate::topdown::anonymize(input),
            RelationalAlgorithm::BottomUp => crate::bottomup::anonymize(input),
            RelationalAlgorithm::Cluster => crate::cluster::anonymize(input, seed),
        }
    }
}

impl fmt::Display for RelationalAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Minimum equivalence-class size when each QI attribute `a` recodes
/// value `v` to `recode(a_pos, v)`. The workhorse k-anonymity check of
/// Incognito/Top-down/Bottom-up.
pub fn min_class_size(
    table: &RtTable,
    qi_attrs: &[usize],
    recode: impl Fn(usize, u32) -> NodeId,
) -> usize {
    if table.n_rows() == 0 {
        return 0;
    }
    // Precompute per-attribute value -> node maps (domains are small,
    // rows are many).
    let maps: Vec<Vec<NodeId>> = qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            (0..table.domain_size(attr) as u32)
                .map(|v| recode(pos, v))
                .collect()
        })
        .collect();
    let mut groups: FxHashMap<Vec<NodeId>, usize> = FxHashMap::default();
    let mut sig = Vec::with_capacity(qi_attrs.len());
    for row in 0..table.n_rows() {
        sig.clear();
        for (pos, &attr) in qi_attrs.iter().enumerate() {
            sig.push(maps[pos][table.value(row, attr).index()]);
        }
        *groups.entry(sig.clone()).or_insert(0) += 1;
    }
    groups.values().copied().min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30", "BSc"], &["a"]).unwrap();
        t.push_row(&["35", "BSc"], &["b"]).unwrap();
        t.push_row(&["60", "MSc"], &["a"]).unwrap();
        t.push_row(&["65", "MSc"], &["b"]).unwrap();
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        let h0 = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let h1 = auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap();
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![h0, h1],
            k,
        }
    }

    #[test]
    fn validate_accepts_good_input() {
        let t = table();
        assert!(input(&t, 2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let t = table();
        let mut i = input(&t, 0);
        assert!(matches!(i.validate(), Err(RelError::BadInput(_))));
        i.k = 9;
        assert_eq!(
            i.validate(),
            Err(RelError::Infeasible { k: 9, n: 4 })
        );
        i.k = 2;
        i.qi_attrs = vec![];
        i.hierarchies = vec![];
        assert!(matches!(i.validate(), Err(RelError::BadInput(_))));

        let mut i2 = input(&t, 2);
        i2.qi_attrs = vec![2, 1]; // transaction attr as QI
        assert!(matches!(i2.validate(), Err(RelError::BadInput(_))));

        let mut i3 = input(&t, 2);
        i3.hierarchies.pop();
        assert!(matches!(i3.validate(), Err(RelError::BadInput(_))));
    }

    #[test]
    fn min_class_size_leaf_recoding() {
        let t = table();
        let i = input(&t, 2);
        let hs = i.hierarchies.clone();
        // identity recoding: all rows distinct -> min class 1
        let m = min_class_size(&t, &i.qi_attrs, |pos, v| hs[pos].leaf(v));
        assert_eq!(m, 1);
        // full generalization: one class of 4
        let m = min_class_size(&t, &i.qi_attrs, |pos, _| hs[pos].root());
        assert_eq!(m, 4);
        // generalize Age only to root: classes by Edu -> 2 and 2
        let m = min_class_size(&t, &i.qi_attrs, |pos, v| {
            if pos == 0 {
                hs[0].root()
            } else {
                hs[1].leaf(v)
            }
        });
        assert_eq!(m, 2);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(RelationalAlgorithm::Incognito.to_string(), "Incognito");
        assert_eq!(RelationalAlgorithm::all().len(), 4);
    }
}
