//! Incognito — full-domain k-anonymity (LeFevre, DeWitt, Ramakrishnan,
//! SIGMOD 2005).
//!
//! Full-domain recoding generalizes *every* value of an attribute to
//! the same hierarchy level, so a solution is a vector of levels, one
//! per QI attribute, and the solution space is a lattice ordered by
//! per-coordinate level. Incognito's key insight is the
//! **generalization property**: if a lattice node is k-anonymous,
//! every more general node is too. The original algorithm exploits it
//! via levelwise candidate generation over QI *subsets*; this
//! implementation runs the size-1 subset stage (per-attribute minimum
//! feasible levels) and then applies the same property directly on the
//! pruned full-QI lattice — larger-subset stages add nothing at
//! SECRETA's attribute counts. The result set is identical to the
//! original's: **all minimal k-anonymous full-domain
//! generalizations**. Of those, the one with the lowest weighted GCP
//! is published, matching how SECRETA's Evaluation mode reports a
//! single anonymized dataset.

use crate::common::{min_class_size, min_class_size_matrix, RelError, RelOutput, RelationalInput};
use secreta_data::hash::FxHashSet;
use secreta_metrics::anon::rel_column_from_value_map;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Run Incognito on `input`.
pub fn anonymize(input: &RelationalInput) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();

    let heights: Vec<u32> = input.hierarchies.iter().map(|h| h.height()).collect();
    let q = input.qi_attrs.len();

    // per-attribute value counts, for GCP-weighted node selection
    let (counts, totals) = input.qi_value_counts();
    // row-major QI values: every lattice-node anonymity check scans
    // all rows, so table lookups must stay out of that loop
    let matrix = input.value_matrix();
    let domains: Vec<usize> = input
        .qi_attrs
        .iter()
        .map(|&a| input.table.domain_size(a))
        .collect();
    timer.phase("setup");

    // Incognito's subset lattice, size-1 stage: an attribute that is
    // not k-anonymous *alone* at some level cannot be part of any
    // k-anonymous combination at that level (projections only merge
    // classes). Computing the per-attribute minimum feasible level
    // first prunes the full lattice sharply.
    let min_level: Vec<u32> = (0..q)
        .map(|pos| {
            (0..=heights[pos])
                .find(|&lvl| {
                    min_class_size(input.table, &input.qi_attrs[pos..=pos], |_, v| {
                        input.hierarchies[pos].generalize(v, lvl)
                    }) >= input.k
                })
                // even the root alone is below k only when k > n,
                // which validate() has excluded
                .expect("root level is k-anonymous for k <= n")
        })
        .collect();
    timer.phase("subset pruning");

    // Enumerate lattice nodes grouped by total level (levelwise,
    // bottom-up), applying the generalization property for pruning.
    let recorder = secreta_obsv::current();
    let max_sum: u32 = heights.iter().sum();
    let mut anonymous: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut minimal: Vec<Vec<u32>> = Vec::new();
    let mut checks = 0u64;
    let mut visited = 0u64;

    for s in 0..=max_sum {
        for node in nodes_with_sum(&heights, s) {
            visited += 1;
            // size-1 subset pruning
            if node.iter().zip(&min_level).any(|(&l, &ml)| l < ml) {
                continue;
            }
            // predecessor anonymous => node anonymous and non-minimal
            let mut implied = false;
            for i in 0..q {
                if node[i] > 0 {
                    let mut pred = node.clone();
                    pred[i] -= 1;
                    if anonymous.contains(&pred) {
                        implied = true;
                        break;
                    }
                }
            }
            if implied {
                anonymous.insert(node);
                continue;
            }
            checks += 1;
            let m = min_class_size_matrix(&matrix, &domains, |pos, v| {
                input.hierarchies[pos].generalize(v, node[pos])
            });
            if m >= input.k {
                minimal.push(node.clone());
                anonymous.insert(node);
            }
        }
    }
    recorder.count("incognito/lattice_nodes", visited);
    recorder.count("incognito/anonymity_checks", checks);
    recorder.count("incognito/minimal_nodes", minimal.len() as u64);
    timer.phase("lattice search");

    // The root node is always k-anonymous once k <= n (validated), so
    // `minimal` is non-empty.
    debug_assert!(!minimal.is_empty());

    // choose the minimal node with the lowest weighted GCP (scored
    // once per node, not once per comparison)
    let gcp_of = |node: &[u32]| -> f64 {
        let mut total = 0.0;
        for pos in 0..q {
            let h = &input.hierarchies[pos];
            let c = &counts[pos];
            let rows = totals[pos];
            if rows == 0 {
                continue;
            }
            let mut attr_sum = 0.0;
            for (v, &cv) in c.iter().enumerate() {
                if cv > 0 {
                    attr_sum += h.ncp(h.generalize(v as u32, node[pos])) * cv as f64;
                }
            }
            total += attr_sum / rows as f64;
        }
        total / q as f64
    };
    let best = minimal
        .iter()
        .map(|node| (node, gcp_of(node)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("GCP is finite"))
        .expect("minimal set non-empty")
        .0
        .clone();
    timer.phase("node selection");

    let rel = input
        .qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            let h = &input.hierarchies[pos];
            rel_column_from_value_map(input.table, attr, |v| {
                GenEntry::Node(h.generalize(v.0, best[pos]))
            })
        })
        .collect();
    let anon = AnonTable {
        rel,
        tx: None,
        n_rows: input.table.n_rows(),
    };
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

/// All level vectors bounded by `heights` whose components sum to `s`.
fn nodes_with_sum(heights: &[u32], s: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; heights.len()];
    fn rec(heights: &[u32], i: usize, remaining: u32, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == heights.len() {
            if remaining == 0 {
                out.push(cur.clone());
            }
            return;
        }
        let cap = heights[i].min(remaining);
        for l in 0..=cap {
            cur[i] = l;
            rec(heights, i + 1, remaining - l, cur, out);
        }
        cur[i] = 0;
    }
    rec(heights, 0, s, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::anon::rel_column_from_value_map;
    use secreta_metrics::gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k,
        }
    }

    #[test]
    fn produces_k_anonymous_truthful_output() {
        let t = table();
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            assert!(is_k_anonymous(&out.anon, k), "k={k}");
            let hs = input(&t, k).hierarchies;
            assert!(out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None));
        }
    }

    #[test]
    fn k1_keeps_original_values() {
        let t = table();
        let out = anonymize(&input(&t, 1)).unwrap();
        let hs = input(&t, 1).hierarchies;
        assert!((gcp(&t, &out.anon, |a| Some(hs[a].clone())) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn loss_is_monotone_in_k() {
        let t = table();
        let hs = input(&t, 1).hierarchies;
        let mut prev = -1.0;
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            assert!(
                g >= prev - 1e-12,
                "GCP must not decrease with k: k={k}, {g} < {prev}"
            );
            prev = g;
        }
    }

    #[test]
    fn full_domain_recoding_is_level_uniform() {
        // every value of an attribute must sit at the same depth
        let t = table();
        let out = anonymize(&input(&t, 2)).unwrap();
        let hs = input(&t, 2).hierarchies;
        for (pos, col) in out.anon.rel.iter().enumerate() {
            let h = &hs[pos];
            let depths: Vec<u32> = col
                .domain
                .iter()
                .map(|e| match e {
                    GenEntry::Node(n) => h.height() - (h.depth(*n)),
                    _ => panic!("Incognito emits Node entries"),
                })
                .collect();
            // all leaves were at uniform depth in auto hierarchies, so
            // generalized depth-from-leaf must be uniform too
            assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
        }
    }

    #[test]
    fn infeasible_k_rejected() {
        let t = table();
        assert_eq!(
            anonymize(&input(&t, 9)).unwrap_err(),
            RelError::Infeasible { k: 9, n: 8 }
        );
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let out = anonymize(&input(&t, 2)).unwrap();
        let names: Vec<&str> = out.phases.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "setup",
                "subset pruning",
                "lattice search",
                "node selection",
                "recode"
            ]
        );
    }

    #[test]
    fn nodes_with_sum_enumerates_lattice_level() {
        assert_eq!(nodes_with_sum(&[2, 2], 0), vec![vec![0, 0]]);
        let s1 = nodes_with_sum(&[2, 2], 1);
        assert_eq!(s1.len(), 2);
        let s2 = nodes_with_sum(&[2, 2], 2);
        assert_eq!(s2.len(), 3);
        let s4 = nodes_with_sum(&[2, 2], 4);
        assert_eq!(s4, vec![vec![2, 2]]);
        assert!(nodes_with_sum(&[1], 5).is_empty());
    }

    #[test]
    fn pruned_search_matches_exhaustive_reference() {
        // recompute the minimal-GCP k-anonymous full-domain node by
        // brute force and compare with the algorithm's published node
        let t = table();
        let i = input(&t, 4);
        let out = anonymize(&i).unwrap();
        let hs = &i.hierarchies;
        let heights: Vec<u32> = hs.iter().map(|h| h.height()).collect();
        let mut best: Option<(Vec<u32>, f64)> = None;
        for l0 in 0..=heights[0] {
            for l1 in 0..=heights[1] {
                let node = vec![l0, l1];
                let m = min_class_size(&t, &i.qi_attrs, |pos, v| hs[pos].generalize(v, node[pos]));
                if m < 4 {
                    continue;
                }
                // only *minimal* nodes qualify
                let minimal = (0..2).all(|pos| {
                    if node[pos] == 0 {
                        return true;
                    }
                    let mut pred = node.clone();
                    pred[pos] -= 1;
                    min_class_size(&t, &i.qi_attrs, |p, v| hs[p].generalize(v, pred[p])) < 4
                });
                if !minimal {
                    continue;
                }
                let anon = AnonTable {
                    rel: i
                        .qi_attrs
                        .iter()
                        .enumerate()
                        .map(|(pos, &attr)| {
                            rel_column_from_value_map(&t, attr, |v| {
                                GenEntry::Node(hs[pos].generalize(v.0, node[pos]))
                            })
                        })
                        .collect(),
                    tx: None,
                    n_rows: t.n_rows(),
                };
                let g = gcp(&t, &anon, |a| Some(hs[a].clone()));
                if best.as_ref().is_none_or(|(_, bg)| g < *bg) {
                    best = Some((node, g));
                }
            }
        }
        let (_, best_gcp) = best.expect("some node is k-anonymous");
        let got = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
        assert!(
            (got - best_gcp).abs() < 1e-12,
            "published GCP {got} differs from optimum {best_gcp}"
        );
    }

    #[test]
    fn single_attribute_dataset() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        for age in ["1", "2", "3", "4"] {
            t.push_row(&[age], &[]).unwrap();
        }
        let h = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let out = anonymize(&RelationalInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: vec![h],
            k: 2,
        })
        .unwrap();
        assert!(is_k_anonymous(&out.anon, 2));
    }
}
