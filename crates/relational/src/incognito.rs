//! Incognito — full-domain k-anonymity (LeFevre, DeWitt, Ramakrishnan,
//! SIGMOD 2005).
//!
//! Full-domain recoding generalizes *every* value of an attribute to
//! the same hierarchy level, so a solution is a vector of levels, one
//! per QI attribute, and the solution space is a lattice ordered by
//! per-coordinate level. Incognito's key insight is the
//! **generalization property**: if a lattice node is k-anonymous,
//! every more general node is too. The original algorithm exploits it
//! via levelwise candidate generation over QI *subsets*; this
//! implementation runs the size-1 subset stage (per-attribute minimum
//! feasible levels) and then applies the same property directly on the
//! pruned full-QI lattice. The kernel counting path additionally runs
//! the size-2 subset stage ([`pair_subset_stage`]): cheap 2-attribute
//! projections whose failures discard the class-heavy bottom of the
//! lattice before any full partition is materialized. Subset stages
//! only prune — the result set is identical to the original's: **all
//! minimal k-anonymous full-domain generalizations**. Of those, the
//! one with the lowest weighted GCP is published, matching how
//! SECRETA's Evaluation mode reports a single anonymized dataset.

use crate::common::{min_class_size_matrix, RelError, RelOutput, RelationalInput};
use crate::kernel::{Counting, LevelTable, Partition, RecodeTables};
use secreta_data::hash::{FxHashMap, FxHashSet};
use secreta_metrics::anon::rel_column_from_value_map;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Run Incognito on `input` with the kernel counting paths.
pub fn anonymize(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run Incognito with the naive per-node row rescans — the reference
/// oracle the kernel path is tested and benchmarked against.
pub fn anonymize_reference(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Naive)
}

/// Run Incognito on `input` with an explicit [`Counting`] selection.
pub fn anonymize_with(input: &RelationalInput, counting: Counting) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();

    let heights: Vec<u32> = input.hierarchies.iter().map(|h| h.height()).collect();
    let q = input.qi_attrs.len();

    // per-attribute value counts, for GCP-weighted node selection
    let (counts, totals) = input.qi_value_counts();
    // row-major QI values: every lattice-node anonymity check scans
    // all rows, so table lookups must stay out of that loop
    let matrix = input.value_matrix();
    let domains: Vec<usize> = input
        .qi_attrs
        .iter()
        .map(|&a| input.table.domain_size(a))
        .collect();
    // the kernel path recodes through precomputed per-level tables
    // instead of re-deriving `generalize()` per domain value per check
    let tables = match counting {
        Counting::Kernel => Some(RecodeTables::build(&input.hierarchies)),
        Counting::Naive => None,
    };
    timer.phase("setup");

    // Incognito's subset lattice, size-1 stage: an attribute that is
    // not k-anonymous *alone* at some level cannot be part of any
    // k-anonymous combination at that level (projections only merge
    // classes). Computing the per-attribute minimum feasible level
    // first prunes the full lattice sharply.
    let min_level: Vec<u32> = match &tables {
        // kernel: partition the column once at level 0 and roll it up
        // — each level after the first costs O(#groups), not O(n)
        Some(rt) => (0..q)
            .map(|pos| {
                let mut part = Partition::build_column(&matrix, pos, rt.table(pos, 0));
                let mut lvl = 0u32;
                while part.min_size() < input.k {
                    debug_assert!(lvl < heights[pos], "root level is k-anonymous for k <= n");
                    part = part.rollup(0, rt.merge(pos, lvl), rt.table(pos, lvl + 1).n_groups);
                    lvl += 1;
                }
                lvl
            })
            .collect(),
        // naive: per-level full-column rescan, with the single-column
        // matrix extracted once per attribute instead of once per
        // candidate level
        None => (0..q)
            .map(|pos| {
                let col = matrix.column(pos);
                let dom = [domains[pos]];
                (0..=heights[pos])
                    .find(|&lvl| {
                        min_class_size_matrix(&col, &dom, |_, v| {
                            input.hierarchies[pos].generalize(v, lvl)
                        }) >= input.k
                    })
                    // even the root alone is below k only when k > n,
                    // which validate() has excluded
                    .expect("root level is k-anonymous for k <= n")
            })
            .collect(),
    };
    timer.phase("subset pruning");

    // Enumerate lattice nodes grouped by total level (levelwise,
    // bottom-up), applying the generalization property for pruning.
    let recorder = secreta_obsv::current();
    let minimal = match &tables {
        Some(rt) => kernel_lattice_search(input, &matrix, rt, &heights, &min_level, &recorder),
        None => naive_lattice_search(input, &matrix, &domains, &heights, &min_level, &recorder),
    };
    recorder.count("incognito/minimal_nodes", minimal.len() as u64);
    timer.phase("lattice search");

    // The root node is always k-anonymous once k <= n (validated), so
    // `minimal` is non-empty.
    debug_assert!(!minimal.is_empty());

    // choose the minimal node with the lowest weighted GCP (scored
    // once per node, not once per comparison)
    let gcp_of = |node: &[u32]| -> f64 {
        let mut total = 0.0;
        for pos in 0..q {
            let h = &input.hierarchies[pos];
            let c = &counts[pos];
            let rows = totals[pos];
            if rows == 0 {
                continue;
            }
            let mut attr_sum = 0.0;
            for (v, &cv) in c.iter().enumerate() {
                if cv > 0 {
                    attr_sum += h.ncp(h.generalize(v as u32, node[pos])) * cv as f64;
                }
            }
            total += attr_sum / rows as f64;
        }
        total / q as f64
    };
    // deterministic tie-break: equal-GCP minimal nodes resolve to the
    // lexicographically smallest level vector, independent of search
    // and iteration order
    let best = minimal
        .iter()
        .map(|node| (node, gcp_of(node)))
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("GCP is finite")
                .then_with(|| a.0.cmp(b.0))
        })
        .expect("minimal set non-empty")
        .0
        .clone();
    timer.phase("node selection");

    let rel = input
        .qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            let h = &input.hierarchies[pos];
            rel_column_from_value_map(input.table, attr, |v| {
                GenEntry::Node(h.generalize(v.0, best[pos]))
            })
        })
        .collect();
    let anon = AnonTable {
        rel,
        tx: None,
        n_rows: input.table.n_rows(),
    };
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

/// The original levelwise search: one full-matrix rescan per checked
/// node. Returns all minimal k-anonymous nodes, in enumeration order.
fn naive_lattice_search(
    input: &RelationalInput,
    matrix: &crate::common::ValueMatrix,
    domains: &[usize],
    heights: &[u32],
    min_level: &[u32],
    recorder: &secreta_obsv::Recorder,
) -> Vec<Vec<u32>> {
    let q = input.qi_attrs.len();
    let max_sum: u32 = heights.iter().sum();
    let mut anonymous: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut minimal: Vec<Vec<u32>> = Vec::new();
    let mut checks = 0u64;
    let mut visited = 0u64;

    for s in 0..=max_sum {
        for node in nodes_with_sum(heights, s) {
            visited += 1;
            // size-1 subset pruning
            if node.iter().zip(min_level).any(|(&l, &ml)| l < ml) {
                continue;
            }
            // predecessor anonymous => node anonymous and non-minimal
            let mut implied = false;
            for i in 0..q {
                if node[i] > 0 {
                    let mut pred = node.clone();
                    pred[i] -= 1;
                    if anonymous.contains(&pred) {
                        implied = true;
                        break;
                    }
                }
            }
            if implied {
                anonymous.insert(node);
                continue;
            }
            checks += 1;
            let m = min_class_size_matrix(matrix, domains, |pos, v| {
                input.hierarchies[pos].generalize(v, node[pos])
            });
            if m >= input.k {
                minimal.push(node.clone());
                anonymous.insert(node);
            }
        }
    }
    recorder.count("incognito/lattice_nodes", visited);
    recorder.count("incognito/anonymity_checks", checks);
    minimal
}

/// The kernel levelwise search. Same pruning and enumeration order as
/// [`naive_lattice_search`], but each checked node's partition is
/// *rolled up* from a failed predecessor's cached partition —
/// O(#classes) instead of an O(n·q) row rescan — and the independent
/// checks within one lattice level run in parallel, merged in fixed
/// node order so the result is byte-identical at any thread count.
///
/// On top of the size-1 stage the kernel path runs Incognito's size-2
/// subset stage: for every attribute pair it sweeps the pair's small
/// 2-D level lattice (the full lattice with every other attribute at
/// its root) and records the level combinations whose two-attribute
/// projection alone is not k-anonymous. The subset property lifts each
/// recorded failure to every full node sharing those two levels, so
/// the deep, class-heavy region of the lattice is discarded without
/// ever materializing its partitions. Pruned nodes are exactly the
/// nodes the naive search checks and fails, so the result set is
/// unchanged.
///
/// Caching only failed nodes is enough: a checked node at sum `s` can
/// have no anonymous predecessor (it would have been pruned by
/// implication), so every predecessor either failed its check at sum
/// `s − 1` (partition cached) or was skipped by subset pruning (fall
/// back to a fresh build from the rows).
fn kernel_lattice_search(
    input: &RelationalInput,
    matrix: &crate::common::ValueMatrix,
    rt: &RecodeTables,
    heights: &[u32],
    min_level: &[u32],
    recorder: &secreta_obsv::Recorder,
) -> Vec<Vec<u32>> {
    let q = input.qi_attrs.len();
    let max_sum: u32 = heights.iter().sum();
    let mut anonymous: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut minimal: Vec<Vec<u32>> = Vec::new();
    let mut checks = 0u64;
    let mut visited = 0u64;
    let mut rollups = 0u64;
    let mut rolled_classes = 0u64;
    let mut builds = 0u64;
    let mut pair_pruned = 0u64;

    // size-2 subset stage: per attribute pair, the set of level
    // combinations whose 2-attribute projection fails k-anonymity
    let pair_bad = pair_subset_stage(input, matrix, rt, heights, min_level, recorder);

    // partitions of the non-anonymous nodes checked at the previous
    // lattice level, the rollup sources for this level's checks
    let mut prev_parts: FxHashMap<Vec<u32>, Partition> = FxHashMap::default();

    for s in 0..=max_sum {
        let mut to_check: Vec<Vec<u32>> = Vec::new();
        for node in nodes_with_sum(heights, s) {
            visited += 1;
            if node.iter().zip(min_level).any(|(&l, &ml)| l < ml) {
                continue;
            }
            let mut implied = false;
            for i in 0..q {
                if node[i] > 0 {
                    let mut pred = node.clone();
                    pred[i] -= 1;
                    if anonymous.contains(&pred) {
                        implied = true;
                        break;
                    }
                }
            }
            if implied {
                anonymous.insert(node);
                continue;
            }
            // a failed pair projection proves the full node fails:
            // skip the check without materializing its partition
            if pair_bad
                .iter()
                .any(|(a, b, bad)| bad.contains(&(node[*a], node[*b])))
            {
                pair_pruned += 1;
                continue;
            }
            to_check.push(node);
        }

        // the nodes of one level are independent (all pruning reads
        // level s−1 state), so their partitions can be computed
        // concurrently; flattening the chunk results restores
        // enumeration order, and the rollup source (the cached
        // predecessor with the fewest classes, first index on ties)
        // depends only on `prev_parts`
        let evaluate = |node: &Vec<u32>| -> (Partition, bool, u64) {
            let mut src: Option<(usize, &Partition)> = None;
            for i in 0..q {
                if node[i] > 0 {
                    let mut pred = node.clone();
                    pred[i] -= 1;
                    if let Some(p) = prev_parts.get(&pred) {
                        if src.is_none_or(|(_, s)| p.n_classes() < s.n_classes()) {
                            src = Some((i, p));
                        }
                    }
                }
            }
            if let Some((i, p)) = src {
                let nc = p.n_classes() as u64;
                let part = p.rollup(i, rt.merge(i, node[i] - 1), rt.table(i, node[i]).n_groups);
                return (part, true, nc);
            }
            let tabs: Vec<&LevelTable> = (0..q).map(|i| rt.table(i, node[i])).collect();
            (Partition::build(matrix, &tabs), false, 0)
        };
        let results: Vec<(Partition, bool, u64)> =
            secreta_parallel::par_chunks(to_check.len(), 1, |lo, hi| {
                to_check[lo..hi].iter().map(evaluate).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        // sequential merge in node order: anonymity bookkeeping,
        // counters and the next level's rollup cache
        let mut next_parts: FxHashMap<Vec<u32>, Partition> = FxHashMap::default();
        for (node, (part, rolled, nc)) in to_check.into_iter().zip(results) {
            checks += 1;
            if rolled {
                rollups += 1;
                rolled_classes += nc;
            } else {
                builds += 1;
            }
            if part.min_size() >= input.k {
                minimal.push(node.clone());
                anonymous.insert(node);
            } else {
                next_parts.insert(node, part);
            }
        }
        prev_parts = next_parts;
    }
    recorder.count("incognito/lattice_nodes", visited);
    recorder.count("incognito/anonymity_checks", checks);
    recorder.count("incognito/rollups", rollups);
    recorder.count("incognito/rolled_classes", rolled_classes);
    recorder.count("incognito/partition_builds", builds);
    recorder.count("incognito/pair_pruned", pair_pruned);
    minimal
}

/// One attribute pair `(a, b)` and the level combinations whose
/// 2-attribute projection fails k-anonymity.
type PairBad = (usize, usize, FxHashSet<(u32, u32)>);

/// Incognito's size-2 subset stage. For every attribute pair `(a, b)`
/// walk the pair's 2-D level lattice levelwise — each node is the full
/// lattice node with every other attribute at its root, so the
/// projection partitions reuse [`Partition::build`]/[`Partition::rollup`]
/// unchanged — and return, per pair, the level combinations whose
/// projection is **not** k-anonymous. These partitions are tiny (the
/// code space is the product of just two attributes' group counts), so
/// the stage costs a few row scans while licensing the main search to
/// skip the lattice's entire class-heavy bottom region.
fn pair_subset_stage(
    input: &RelationalInput,
    matrix: &crate::common::ValueMatrix,
    rt: &RecodeTables,
    heights: &[u32],
    min_level: &[u32],
    recorder: &secreta_obsv::Recorder,
) -> Vec<PairBad> {
    let q = input.qi_attrs.len();
    let mut out = Vec::new();
    let mut pair_checks = 0u64;
    for a in 0..q {
        for b in a + 1..q {
            let mut bad: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut anon: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut prev: FxHashMap<(u32, u32), Partition> = FxHashMap::default();
            let base = (min_level[a], min_level[b]);
            let max_sum = heights[a] + heights[b];
            for s in (base.0 + base.1)..=max_sum {
                let mut next: FxHashMap<(u32, u32), Partition> = FxHashMap::default();
                let mut all_anonymous = true;
                for la in base.0..=heights[a].min(s) {
                    let lb = s - la;
                    if lb < base.1 || lb > heights[b] {
                        continue;
                    }
                    // implication pruning within the pair lattice
                    if (la > base.0 && anon.contains(&(la - 1, lb)))
                        || (lb > base.1 && anon.contains(&(la, lb - 1)))
                    {
                        anon.insert((la, lb));
                        continue;
                    }
                    pair_checks += 1;
                    let part = if la > base.0 && prev.contains_key(&(la - 1, lb)) {
                        prev[&(la - 1, lb)].rollup(a, rt.merge(a, la - 1), rt.table(a, la).n_groups)
                    } else if lb > base.1 && prev.contains_key(&(la, lb - 1)) {
                        prev[&(la, lb - 1)].rollup(b, rt.merge(b, lb - 1), rt.table(b, lb).n_groups)
                    } else {
                        let tabs: Vec<&LevelTable> = (0..q)
                            .map(|i| {
                                let lvl = if i == a {
                                    la
                                } else if i == b {
                                    lb
                                } else {
                                    heights[i]
                                };
                                rt.table(i, lvl)
                            })
                            .collect();
                        Partition::build(matrix, &tabs)
                    };
                    if part.min_size() >= input.k {
                        anon.insert((la, lb));
                    } else {
                        all_anonymous = false;
                        bad.insert((la, lb));
                        next.insert((la, lb), part);
                    }
                }
                if all_anonymous && s > base.0 + base.1 {
                    // every projection at this sum is k-anonymous, so
                    // by the generalization property so is everything
                    // above — nothing further can fail
                    break;
                }
                prev = next;
            }
            if !bad.is_empty() {
                out.push((a, b, bad));
            }
        }
    }
    recorder.count("incognito/pair_checks", pair_checks);
    out
}

/// All level vectors bounded by `heights` whose components sum to `s`.
fn nodes_with_sum(heights: &[u32], s: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; heights.len()];
    fn rec(heights: &[u32], i: usize, remaining: u32, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == heights.len() {
            if remaining == 0 {
                out.push(cur.clone());
            }
            return;
        }
        let cap = heights[i].min(remaining);
        for l in 0..=cap {
            cur[i] = l;
            rec(heights, i + 1, remaining - l, cur, out);
        }
        cur[i] = 0;
    }
    rec(heights, 0, s, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::min_class_size;
    use crate::verify::is_k_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::anon::rel_column_from_value_map;
    use secreta_metrics::gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k,
        }
    }

    #[test]
    fn produces_k_anonymous_truthful_output() {
        let t = table();
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            assert!(is_k_anonymous(&out.anon, k), "k={k}");
            let hs = input(&t, k).hierarchies;
            assert!(out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None));
        }
    }

    #[test]
    fn k1_keeps_original_values() {
        let t = table();
        let out = anonymize(&input(&t, 1)).unwrap();
        let hs = input(&t, 1).hierarchies;
        assert!((gcp(&t, &out.anon, |a| Some(hs[a].clone())) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn loss_is_monotone_in_k() {
        let t = table();
        let hs = input(&t, 1).hierarchies;
        let mut prev = -1.0;
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            assert!(
                g >= prev - 1e-12,
                "GCP must not decrease with k: k={k}, {g} < {prev}"
            );
            prev = g;
        }
    }

    #[test]
    fn full_domain_recoding_is_level_uniform() {
        // every value of an attribute must sit at the same depth
        let t = table();
        let out = anonymize(&input(&t, 2)).unwrap();
        let hs = input(&t, 2).hierarchies;
        for (pos, col) in out.anon.rel.iter().enumerate() {
            let h = &hs[pos];
            let depths: Vec<u32> = col
                .domain
                .iter()
                .map(|e| match e {
                    GenEntry::Node(n) => h.height() - (h.depth(*n)),
                    _ => panic!("Incognito emits Node entries"),
                })
                .collect();
            // all leaves were at uniform depth in auto hierarchies, so
            // generalized depth-from-leaf must be uniform too
            assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
        }
    }

    #[test]
    fn infeasible_k_rejected() {
        let t = table();
        assert_eq!(
            anonymize(&input(&t, 9)).unwrap_err(),
            RelError::Infeasible { k: 9, n: 8 }
        );
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let out = anonymize(&input(&t, 2)).unwrap();
        let names: Vec<&str> = out.phases.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "setup",
                "subset pruning",
                "lattice search",
                "node selection",
                "recode"
            ]
        );
    }

    #[test]
    fn nodes_with_sum_enumerates_lattice_level() {
        assert_eq!(nodes_with_sum(&[2, 2], 0), vec![vec![0, 0]]);
        let s1 = nodes_with_sum(&[2, 2], 1);
        assert_eq!(s1.len(), 2);
        let s2 = nodes_with_sum(&[2, 2], 2);
        assert_eq!(s2.len(), 3);
        let s4 = nodes_with_sum(&[2, 2], 4);
        assert_eq!(s4, vec![vec![2, 2]]);
        assert!(nodes_with_sum(&[1], 5).is_empty());
    }

    #[test]
    fn pruned_search_matches_exhaustive_reference() {
        // recompute the minimal-GCP k-anonymous full-domain node by
        // brute force and compare with the algorithm's published node
        let t = table();
        let i = input(&t, 4);
        let out = anonymize(&i).unwrap();
        let hs = &i.hierarchies;
        let heights: Vec<u32> = hs.iter().map(|h| h.height()).collect();
        let mut best: Option<(Vec<u32>, f64)> = None;
        for l0 in 0..=heights[0] {
            for l1 in 0..=heights[1] {
                let node = vec![l0, l1];
                let m = min_class_size(&t, &i.qi_attrs, |pos, v| hs[pos].generalize(v, node[pos]));
                if m < 4 {
                    continue;
                }
                // only *minimal* nodes qualify
                let minimal = (0..2).all(|pos| {
                    if node[pos] == 0 {
                        return true;
                    }
                    let mut pred = node.clone();
                    pred[pos] -= 1;
                    min_class_size(&t, &i.qi_attrs, |p, v| hs[p].generalize(v, pred[p])) < 4
                });
                if !minimal {
                    continue;
                }
                let anon = AnonTable {
                    rel: i
                        .qi_attrs
                        .iter()
                        .enumerate()
                        .map(|(pos, &attr)| {
                            rel_column_from_value_map(&t, attr, |v| {
                                GenEntry::Node(hs[pos].generalize(v.0, node[pos]))
                            })
                        })
                        .collect(),
                    tx: None,
                    n_rows: t.n_rows(),
                };
                let g = gcp(&t, &anon, |a| Some(hs[a].clone()));
                if best.as_ref().is_none_or(|(_, bg)| g < *bg) {
                    best = Some((node, g));
                }
            }
        }
        let (_, best_gcp) = best.expect("some node is k-anonymous");
        let got = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
        assert!(
            (got - best_gcp).abs() < 1e-12,
            "published GCP {got} differs from optimum {best_gcp}"
        );
    }

    #[test]
    fn equal_gcp_tie_resolves_to_lexicographically_smallest_node() {
        // two perfectly symmetric attributes: at k=2 both [0,1] and
        // [1,0] are minimal k-anonymous nodes with identical GCP, so
        // selection must fall back to lexicographic node order
        let schema = Schema::new(vec![
            Attribute::categorical("A"),
            Attribute::categorical("B"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (a, b) in [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")] {
            t.push_row(&[a, b], &[]).unwrap();
        }
        let i = RelationalInput {
            table: &t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Categorical, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k: 2,
        };
        let hs = &i.hierarchies;
        // confirm the tie exists: both single-raise nodes are minimal
        for node in [[0u32, 1], [1, 0]] {
            let m = min_class_size(&t, &i.qi_attrs, |p, v| hs[p].generalize(v, node[p]));
            assert!(m >= 2, "node {node:?} must be k-anonymous");
        }
        for counting in [Counting::Naive, Counting::Kernel] {
            let out = anonymize_with(&i, counting).unwrap();
            let levels: Vec<u32> = out
                .anon
                .rel
                .iter()
                .enumerate()
                .map(|(pos, col)| {
                    let GenEntry::Node(node) = &col.domain[0] else {
                        panic!("Incognito emits Node entries");
                    };
                    hs[pos].height() - hs[pos].depth(*node)
                })
                .collect();
            assert_eq!(levels, vec![0, 1], "{counting:?} must publish [0,1]");
        }
    }

    #[test]
    fn kernel_matches_naive_on_fixture() {
        let t = table();
        for k in [1, 2, 3, 4, 8] {
            let fast = anonymize_with(&input(&t, k), Counting::Kernel).unwrap();
            let slow = anonymize_with(&input(&t, k), Counting::Naive).unwrap();
            assert_eq!(fast.anon, slow.anon, "k={k}");
        }
    }

    #[test]
    fn single_attribute_dataset() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        for age in ["1", "2", "3", "4"] {
            t.push_row(&[age], &[]).unwrap();
        }
        let h = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let out = anonymize(&RelationalInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: vec![h],
            k: 2,
        })
        .unwrap();
        assert!(is_k_anonymous(&out.anon, 2));
    }
}
