//! # secreta-relational
//!
//! The four relational k-anonymity algorithms SECRETA integrates:
//!
//! | Algorithm | Recoding | Reference |
//! |---|---|---|
//! | [`incognito`] | full-domain (global, level-uniform) | LeFevre et al., SIGMOD 2005 |
//! | [`topdown`] | full-subtree cut, specialized top-down | Fung et al., ICDE 2005 |
//! | [`bottomup`] | full-subtree cut, generalized bottom-up | (classic counterpart of Top-down) |
//! | [`cluster`] | per-cluster LCA (local recoding) | Poulis et al., ECML/PKDD 2013 |
//!
//! All four consume a [`RelationalInput`] (table + quasi-identifier
//! attributes + per-attribute hierarchies + `k`) and produce an
//! [`secreta_metrics::AnonTable`] plus [`secreta_metrics::PhaseTimes`],
//! so the SECRETA framework can evaluate and compare them uniformly.

pub mod bottomup;
pub mod cluster;
pub mod common;
pub mod incognito;
pub mod kernel;
pub mod topdown;
pub mod verify;

pub use common::{RelError, RelOutput, RelationalAlgorithm, RelationalInput};
pub use kernel::Counting;
pub use verify::is_k_anonymous;
