//! Top-down specialization (Fung, Wang, Yu — ICDE 2005).
//!
//! Starts from the fully generalized table (every QI at its hierarchy
//! root — trivially k-anonymous once `k ≤ n`) and repeatedly applies
//! the most profitable *specialization*: replacing one cut node by its
//! children, provided the result is still k-anonymous. The original
//! scores specializations by `InfoGain/AnonyLoss` against a
//! classification target; SECRETA datasets carry no class attribute,
//! so the score is the specialization's *information-loss reduction*
//! (record-weighted NCP decrease), which is the measure the SECRETA
//! framework evaluates — the greedy structure, cut representation and
//! stopping rule are Fung et al.'s.

use crate::common::{min_class_size_matrix, RelError, RelOutput, RelationalInput};
use crate::kernel::{Counting, RowPartition};
use secreta_hierarchy::{Cut, Hierarchy, NodeId};
use secreta_metrics::anon::rel_column_from_value_map;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Run Top-down specialization on `input` with the kernel counting
/// paths.
pub fn anonymize(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run Top-down with the naive per-candidate full-table rescans — the
/// reference oracle the kernel path is tested and benchmarked against.
pub fn anonymize_reference(input: &RelationalInput) -> Result<RelOutput, RelError> {
    anonymize_with(input, Counting::Naive)
}

/// NCP gain of splitting `cand` into its children, weighted by the
/// records it covers. Shared by both counting paths so candidate
/// ranking is identical by construction.
fn split_gain(h: &Hierarchy, cand: NodeId, counts: &[u64], total: u64) -> f64 {
    let mut gain = 0.0;
    for v in h.leaves_under(cand) {
        let c = counts[v as usize];
        if c == 0 {
            continue;
        }
        let child = h
            .children(cand)
            .iter()
            .copied()
            .find(|&ch| h.contains(ch, v))
            .expect("leaf under cand sits under one child");
        gain += (h.ncp(cand) - h.ncp(child)) * c as f64;
    }
    gain / total as f64
}

/// Run Top-down specialization on `input` with an explicit
/// [`Counting`] selection.
pub fn anonymize_with(input: &RelationalInput, counting: Counting) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();

    let q = input.qi_attrs.len();
    let (counts, totals) = input.qi_value_counts();
    let mut cuts: Vec<Cut> = input.hierarchies.iter().map(Cut::root).collect();
    // QI values in row-major form: the k-anonymity check below runs
    // once per candidate per round, so table lookups must not sit on
    // that path
    let matrix = input.value_matrix();
    let domains: Vec<usize> = input
        .qi_attrs
        .iter()
        .map(|&a| input.table.domain_size(a))
        .collect();
    // kernel: cut-resident partition with per-class row lists, so a
    // candidate split only touches the rows of the classes it splits
    let mut partition = match counting {
        Counting::Kernel => Some(RowPartition::root_cut(
            input.table.n_rows(),
            &input.hierarchies,
        )),
        Counting::Naive => None,
    };
    timer.phase("setup");

    // Greedy specialization loop.
    let recorder = secreta_obsv::current();
    let mut splits = 0u64;
    let mut candidate_checks = 0u64;
    let mut rows_touched = 0u64;
    loop {
        let mut best: Option<(usize, NodeId, f64)> = None;
        for pos in 0..q {
            let h = &input.hierarchies[pos];
            for cand in cuts[pos].specialization_candidates(h) {
                candidate_checks += 1;
                let total = totals[pos];
                if total == 0 {
                    continue;
                }
                let gain = split_gain(h, cand, &counts[pos], total);
                // zero-gain specializations stay eligible: unary chain
                // nodes (an interval with a single child covering the
                // same leaves) must not block the descent — TDS stops
                // on *validity*, the score only ranks candidates
                // validity: still k-anonymous after the split
                let valid = match &partition {
                    // every class of the current (valid) cut has ≥ k
                    // rows, so only the classes `cand` splits can
                    // violate: bucket their rows by child
                    Some(rp) => {
                        let (ok, touched) = rp.split_is_valid(&matrix, pos, cand, h, input.k);
                        rows_touched += touched;
                        ok
                    }
                    None => {
                        let mut trial = cuts[pos].clone();
                        trial.specialize(h, cand);
                        let m = min_class_size_matrix(&matrix, &domains, |p, v| {
                            if p == pos {
                                trial.node_of(v)
                            } else {
                                cuts[p].node_of(v)
                            }
                        });
                        m >= input.k
                    }
                };
                if !valid {
                    continue;
                }
                if best.as_ref().is_none_or(|&(_, _, g)| gain > g) {
                    best = Some((pos, cand, gain));
                }
            }
        }
        match best {
            Some((pos, node, _)) => {
                splits += 1;
                if let Some(rp) = &mut partition {
                    rp.apply_split(&matrix, pos, node, &input.hierarchies[pos]);
                }
                cuts[pos].specialize(&input.hierarchies[pos], node);
            }
            None => break,
        }
    }
    recorder.count("topdown/splits", splits);
    recorder.count("topdown/candidate_checks", candidate_checks);
    recorder.count("topdown/split_rows_touched", rows_touched);
    timer.phase("specialization");

    let rel = input
        .qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            rel_column_from_value_map(input.table, attr, |v| {
                GenEntry::Node(cuts[pos].node_of(v.0))
            })
        })
        .collect();
    let anon = AnonTable {
        rel,
        tx: None,
        n_rows: input.table.n_rows(),
    };
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k,
        }
    }

    #[test]
    fn produces_k_anonymous_truthful_output() {
        let t = table();
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            assert!(is_k_anonymous(&out.anon, k), "k={k}");
            let hs = input(&t, k).hierarchies;
            assert!(out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None));
        }
    }

    #[test]
    fn k1_recovers_original_data() {
        let t = table();
        let out = anonymize(&input(&t, 1)).unwrap();
        let hs = input(&t, 1).hierarchies;
        assert_eq!(gcp(&t, &out.anon, |a| Some(hs[a].clone())), 0.0);
    }

    #[test]
    fn k_equals_n_generalizes_heavily() {
        let t = table();
        let out = anonymize(&input(&t, 8)).unwrap();
        assert!(is_k_anonymous(&out.anon, 8));
        // 8 = n: a single equivalence class
        let (sizes, _) = out.anon.equivalence_classes();
        assert_eq!(sizes, vec![8]);
    }

    #[test]
    fn loss_is_monotone_in_k() {
        let t = table();
        let hs = input(&t, 1).hierarchies;
        let mut prev = -1.0;
        for k in [1, 2, 4, 8] {
            let out = anonymize(&input(&t, k)).unwrap();
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            assert!(g >= prev - 1e-12, "k={k}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn infeasible_k_rejected() {
        let t = table();
        assert!(matches!(
            anonymize(&input(&t, 100)),
            Err(RelError::Infeasible { .. })
        ));
    }

    #[test]
    fn cut_recoding_is_full_subtree() {
        // values under the same cut node share a generalized entry
        let t = table();
        let out = anonymize(&input(&t, 4)).unwrap();
        for col in &out.anon.rel {
            for e in &col.domain {
                assert!(matches!(e, GenEntry::Node(_)));
            }
        }
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let out = anonymize(&input(&t, 2)).unwrap();
        assert!(out.phases.get("specialization").is_some());
        assert!(out.phases.get("recode").is_some());
    }

    #[test]
    fn kernel_matches_naive_on_fixture() {
        let t = table();
        for k in [1, 2, 3, 4, 8] {
            let fast = anonymize_with(&input(&t, k), Counting::Kernel).unwrap();
            let slow = anonymize_with(&input(&t, k), Counting::Naive).unwrap();
            assert_eq!(fast.anon, slow.anon, "k={k}");
        }
    }
}
