//! Cluster — greedy k-member clustering with LCA recoding.
//!
//! The relational step of Poulis et al. (ECML/PKDD 2013), which
//! SECRETA lists as its "Cluster" algorithm: records are grouped into
//! clusters of at least `k` members chosen to minimize information
//! loss, and each cluster publishes, per QI attribute, the lowest
//! common ancestor of its members' values (local recoding — different
//! clusters may generalize the same value differently, which is what
//! lets Cluster beat the global-recoding algorithms on utility).
//!
//! Seeding is randomized (`seed` parameter) exactly so the SECRETA
//! Comparison mode can show run-to-run variance; member selection is
//! the standard greedy furthest/cheapest-insertion of k-member
//! clustering.
//!
//! # Performance
//!
//! The greedy insertion scan is the hot path: every added member costs
//! an argmin over all unassigned rows, each evaluating an
//! `ncp(lca(cluster, row))` delta per QI attribute. [`anonymize`] runs
//! that kernel on three accelerations — a precomputed row-major leaf
//! matrix (no `table.value()` lookups in the loop), O(1) Euler-tour
//! LCA with precomputed NCP, and a chunked parallel argmin whose
//! first-minimum tie-breaking is byte-identical to the sequential
//! scan. [`anonymize_reference`] preserves the original
//! implementation (parent-walk LCA, per-access table reads, on-demand
//! NCP, sequential argmin); tests assert both produce identical
//! output, and `secreta bench` reports the speedup between them.

use crate::common::{RelError, RelOutput, RelationalInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secreta_data::hash::FxHashMap;
use secreta_hierarchy::{Hierarchy, NodeId};
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer, RelColumn};
use secreta_parallel::par_argmin;

/// A cluster under construction: member rows plus the running LCA per
/// QI attribute.
struct Building {
    rows: Vec<usize>,
    lcas: Vec<NodeId>,
}

/// Run Cluster on `input` with the given RNG `seed`.
pub fn anonymize(input: &RelationalInput, seed: u64) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();
    let recorder = secreta_obsv::current();
    let q = input.qi_attrs.len();
    let n = input.table.n_rows();
    let mut rng = StdRng::seed_from_u64(seed);

    // row-major leaf matrix: the argmin loops touch every row's QI
    // tuple thousands of times, so resolve table cells to leaf nodes
    // exactly once
    let leaves = input.leaf_matrix();
    let hierarchies = &input.hierarchies;

    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Building> = Vec::new();

    // The absorption cost of a row depends only on its *leaf tuple*,
    // not on the row itself, so per attribute the cost of every
    // possible leaf can be tabulated once per cluster mutation
    // (O(q·leaves) with O(1) lca/ncp) and the argmin scan over rows
    // becomes pure flat-array lookups. `cost` is one flat buffer over
    // all hierarchies' node ids, indexed by `offsets[pos] + leaf`.
    let offsets: Vec<usize> = {
        let mut offs = Vec::with_capacity(q);
        let mut acc = 0usize;
        for h in hierarchies.iter() {
            offs.push(acc);
            acc += h.n_nodes();
        }
        offs
    };
    let total_nodes: usize = hierarchies.iter().map(|h| h.n_nodes()).sum();
    let mut cost = vec![0.0f64; total_nodes];
    let rebuild = |cost: &mut [f64], lcas: &[NodeId]| {
        for (pos, &lca) in lcas.iter().enumerate() {
            let h = &hierarchies[pos];
            let base = h.ncp(lca);
            let off = offsets[pos];
            for v in 0..h.n_leaves() as u32 {
                let leaf = h.leaf(v);
                // same expression and evaluation order as the
                // reference delta, so the sums below are bit-identical
                cost[off + leaf.index()] = h.ncp(h.lca(lca, leaf)) - base;
            }
        }
    };
    timer.phase("setup");

    // Generic absorption cost (used on the sparse leftover path where
    // tabulation would not pay off): summed NCP increase over
    // attributes, O(q) via the constant-time kernels.
    let delta = |lcas: &[NodeId], row: usize| -> f64 {
        let row_leaves = leaves.row(row);
        let mut d = 0.0;
        for (pos, &lca) in lcas.iter().enumerate() {
            let h = &hierarchies[pos];
            let merged = h.lca(lca, row_leaves[pos]);
            d += h.ncp(merged) - h.ncp(lca);
        }
        d
    };

    // counters batch in locals and flush once per phase — the hot
    // loops never touch the recorder's lock
    let mut ncp_evals = 0u64;
    let mut cost_rebuilds = 0u64;

    while unassigned.len() >= input.k {
        // random seed record (the randomized choice of the original)
        let si = rng.gen_range(0..unassigned.len());
        let seed_row = unassigned.swap_remove(si);
        let mut cluster = Building {
            rows: vec![seed_row],
            lcas: leaves.row(seed_row).to_vec(),
        };
        rebuild(&mut cost, &cluster.lcas);
        cost_rebuilds += 1;
        // greedily add the k-1 cheapest records
        for _ in 1..input.k {
            ncp_evals += unassigned.len() as u64;
            let (bi, _) = {
                let cost = &cost[..];
                par_argmin(unassigned.len(), |i| {
                    let row_leaves = leaves.row(unassigned[i]);
                    let mut d = 0.0;
                    for pos in 0..q {
                        d += cost[offsets[pos] + row_leaves[pos].index()];
                    }
                    d
                })
            }
            .expect("unassigned non-empty: len >= k");
            let row = unassigned.swap_remove(bi);
            let mut changed = false;
            for (pos, h) in hierarchies.iter().enumerate() {
                let merged = h.lca(cluster.lcas[pos], leaves.row(row)[pos]);
                if merged != cluster.lcas[pos] {
                    cluster.lcas[pos] = merged;
                    changed = true;
                }
            }
            cluster.rows.push(row);
            if changed {
                rebuild(&mut cost, &cluster.lcas);
                cost_rebuilds += 1;
            }
        }
        clusters.push(cluster);
    }
    recorder.count("cluster/clusters", clusters.len() as u64);
    recorder.count("cluster/cost_rebuilds", cost_rebuilds);
    timer.phase("clustering");

    // leftovers (fewer than k) each join the cheapest cluster
    recorder.count("cluster/leftovers", unassigned.len() as u64);
    for row in unassigned.drain(..) {
        ncp_evals += clusters.len() as u64;
        let (ci, _) = par_argmin(clusters.len(), |i| delta(&clusters[i].lcas, row))
            .expect("k <= n guarantees at least one cluster");
        let c = &mut clusters[ci];
        for (pos, h) in hierarchies.iter().enumerate() {
            c.lcas[pos] = h.lca(c.lcas[pos], leaves.row(row)[pos]);
        }
        c.rows.push(row);
    }
    recorder.count("cluster/ncp_evals", ncp_evals);
    timer.phase("leftover assignment");

    let anon = recode(input, &clusters, n, q);
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

/// The pre-optimization implementation, retained verbatim as the
/// benchmark baseline and the independent oracle for equivalence
/// tests: parent-walk LCA, per-access `table.value()` reads, NCP
/// recomputed from leaf counts, sequential argmin scans.
pub fn anonymize_reference(input: &RelationalInput, seed: u64) -> Result<RelOutput, RelError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();
    let q = input.qi_attrs.len();
    let n = input.table.n_rows();
    let mut rng = StdRng::seed_from_u64(seed);

    // row -> leaf nodes per attribute, resolved on every access
    let leaf_of_row = |row: usize, pos: usize| -> NodeId {
        input.hierarchies[pos].leaf(input.table.value(row, input.qi_attrs[pos]).0)
    };
    // the original on-demand NCP (the precomputed table did not exist)
    let ncp_of = |h: &Hierarchy, node: NodeId| -> f64 {
        let total = h.n_leaves();
        if total <= 1 {
            return 0.0;
        }
        (h.leaf_count(node) - 1) as f64 / (total - 1) as f64
    };

    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Building> = Vec::new();
    timer.phase("setup");

    let delta = |lcas: &[NodeId], row: usize| -> f64 {
        let mut d = 0.0;
        for (pos, &lca) in lcas.iter().enumerate() {
            let h = &input.hierarchies[pos];
            let merged = h.lca_walk(lca, leaf_of_row(row, pos));
            d += ncp_of(h, merged) - ncp_of(h, lca);
        }
        d
    };

    while unassigned.len() >= input.k {
        let si = rng.gen_range(0..unassigned.len());
        let seed_row = unassigned.swap_remove(si);
        let mut cluster = Building {
            rows: vec![seed_row],
            lcas: (0..q).map(|pos| leaf_of_row(seed_row, pos)).collect(),
        };
        for _ in 1..input.k {
            let (bi, _) = unassigned
                .iter()
                .enumerate()
                .map(|(i, &row)| (i, delta(&cluster.lcas, row)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NCP finite"))
                .expect("unassigned non-empty: len >= k");
            let row = unassigned.swap_remove(bi);
            for pos in 0..q {
                let h = &input.hierarchies[pos];
                cluster.lcas[pos] = h.lca_walk(cluster.lcas[pos], leaf_of_row(row, pos));
            }
            cluster.rows.push(row);
        }
        clusters.push(cluster);
    }
    timer.phase("clustering");

    for row in unassigned.drain(..) {
        let (ci, _) = clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (i, delta(&c.lcas, row)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NCP finite"))
            .expect("k <= n guarantees at least one cluster");
        let c = &mut clusters[ci];
        for pos in 0..q {
            let h = &input.hierarchies[pos];
            c.lcas[pos] = h.lca_walk(c.lcas[pos], leaf_of_row(row, pos));
        }
        c.rows.push(row);
    }
    timer.phase("leftover assignment");

    let anon = recode(input, &clusters, n, q);
    timer.phase("recode");

    Ok(RelOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Publish each cluster's LCA per QI attribute (local recoding).
fn recode(input: &RelationalInput, clusters: &[Building], n: usize, q: usize) -> AnonTable {
    let mut rel = Vec::with_capacity(q);
    for pos in 0..q {
        let mut domain: Vec<GenEntry> = Vec::new();
        let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut cells = vec![0u32; n];
        for c in clusters {
            let node = c.lcas[pos];
            let next = domain.len() as u32;
            let gid = *index.entry(node).or_insert(next);
            if gid as usize == domain.len() {
                domain.push(GenEntry::Node(node));
            }
            for &row in &c.rows {
                cells[row] = gid;
            }
        }
        rel.push(RelColumn {
            attr: input.qi_attrs[pos],
            domain,
            cells,
        });
    }
    AnonTable {
        rel,
        tx: None,
        n_rows: n,
    }
}

/// Row sets of the clusters produced by the clustering phase — needed
/// by the RT bounding methods, which anonymize the transaction part
/// *within* each relational cluster. Same algorithm and seed semantics
/// as [`anonymize`], returning the partition instead of the recoding.
pub fn cluster_rows(input: &RelationalInput, seed: u64) -> Result<Vec<Vec<usize>>, RelError> {
    let out = anonymize(input, seed)?;
    // reconstruct the partition from equivalence classes of the output
    // (clusters with identical LCAs merge — harmless for the callers,
    // since equal signatures are indistinguishable anyway)
    let (sizes, row_class) = out.anon.equivalence_classes();
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); sizes.len()];
    for (row, &c) in row_class.iter().enumerate() {
        clusters[c as usize].push(row);
    }
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, edu) in [
            ("30", "BSc"),
            ("31", "BSc"),
            ("32", "MSc"),
            ("33", "MSc"),
            ("60", "BSc"),
            ("61", "BSc"),
            ("62", "MSc"),
            ("63", "MSc"),
            ("64", "PhD"),
        ] {
            t.push_row(&[age, edu], &[]).unwrap();
        }
        t
    }

    /// A table wide enough (> the parallel threshold) that the argmin
    /// scans actually split across worker threads.
    fn big_table(rows: usize) -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        let edus = ["BSc", "MSc", "PhD", "HS"];
        for i in 0..rows {
            let age = (18 + (i * 13) % 60).to_string();
            t.push_row(&[&age, edus[(i * 7) % edus.len()]], &[])
                .unwrap();
        }
        t
    }

    fn input(t: &RtTable, k: usize) -> RelationalInput<'_> {
        RelationalInput {
            table: t,
            qi_attrs: vec![0, 1],
            hierarchies: vec![
                auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap(),
                auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap(),
            ],
            k,
        }
    }

    #[test]
    fn produces_k_anonymous_truthful_output() {
        let t = table();
        for k in [1, 2, 3, 4] {
            let out = anonymize(&input(&t, k), 42).unwrap();
            assert!(is_k_anonymous(&out.anon, k), "k={k}");
            let hs = input(&t, k).hierarchies;
            assert!(out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let a = anonymize(&input(&t, 3), 7).unwrap();
        let b = anonymize(&input(&t, 3), 7).unwrap();
        assert_eq!(a.anon, b.anon);
    }

    #[test]
    fn optimized_matches_reference_implementation() {
        let t = table();
        for seed in 0..4 {
            for k in [1, 2, 3, 5] {
                let fast = anonymize(&input(&t, k), seed).unwrap();
                let slow = anonymize_reference(&input(&t, k), seed).unwrap();
                assert_eq!(fast.anon, slow.anon, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn optimized_matches_reference_on_large_input() {
        let t = big_table(700);
        let fast = anonymize(&input(&t, 10), 3).unwrap();
        let slow = anonymize_reference(&input(&t, 10), 3).unwrap();
        assert_eq!(fast.anon, slow.anon);
    }

    #[test]
    fn parallel_byte_identical_to_sequential() {
        // > MIN_PARALLEL rows so the chunked argmin really engages
        let t = big_table(1200);
        let i = input(&t, 10);
        secreta_parallel::set_threads(1);
        let sequential = anonymize(&i, 9).unwrap();
        for threads in [2usize, 3, 8] {
            secreta_parallel::set_threads(threads);
            let parallel = anonymize(&i, 9).unwrap();
            assert_eq!(sequential.anon, parallel.anon, "threads={threads}");
        }
        secreta_parallel::set_threads(0);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let t = table();
        for seed in 0..5 {
            let out = anonymize(&input(&t, 3), seed).unwrap();
            assert!(is_k_anonymous(&out.anon, 3));
        }
    }

    #[test]
    fn local_recoding_beats_or_matches_full_domain_on_this_data() {
        // clusters of close ages keep NCP low; full generalization
        // would pay much more
        let t = table();
        let hs = input(&t, 2).hierarchies;
        let out = anonymize(&input(&t, 2), 1).unwrap();
        let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
        assert!(g < 1.0, "must not degenerate to the root: {g}");
    }

    #[test]
    fn leftovers_are_absorbed() {
        let t = table(); // 9 rows, k=4 -> 2 clusters + 1 leftover
        let out = anonymize(&input(&t, 4), 3).unwrap();
        let (sizes, _) = out.anon.equivalence_classes();
        assert_eq!(sizes.iter().sum::<usize>(), 9);
        assert!(sizes.iter().all(|&s| s >= 4));
    }

    #[test]
    fn cluster_rows_partitions_everything() {
        let t = table();
        let clusters = cluster_rows(&input(&t, 3), 11).unwrap();
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        for c in &clusters {
            assert!(c.len() >= 3);
        }
    }

    #[test]
    fn infeasible_k_rejected() {
        let t = table();
        assert!(matches!(
            anonymize(&input(&t, 10), 0),
            Err(RelError::Infeasible { .. })
        ));
    }

    #[test]
    fn k_equals_n_single_cluster() {
        let t = table();
        let out = anonymize(&input(&t, 9), 5).unwrap();
        let (sizes, _) = out.anon.equivalence_classes();
        assert_eq!(sizes, vec![9]);
    }
}
