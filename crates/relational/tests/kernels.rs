//! Kernel-vs-naive identity tests for the relational counting kernels.
//!
//! Every algorithm's `Counting::Kernel` path must produce output
//! byte-identical to its `Counting::Naive` oracle on arbitrary inputs,
//! and the kernel's parallel lattice evaluation must be invariant
//! under the thread count (1/2/8).

use proptest::prelude::*;
use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
use secreta_hierarchy::auto_hierarchy;
use secreta_relational::{bottomup, incognito, topdown};
use secreta_relational::{Counting, RelationalInput};
use std::sync::Mutex;

/// Serializes tests that flip the global thread override.
static GLOBALS: Mutex<()> = Mutex::new(());

fn build_table(rows: &[(usize, usize)], dom_a: usize, dom_b: usize) -> RtTable {
    let schema = Schema::new(vec![Attribute::numeric("A"), Attribute::categorical("B")]).unwrap();
    let mut t = RtTable::new(schema);
    for v in 0..dom_a {
        t.intern_value(0, &v.to_string()).unwrap();
    }
    for v in 0..dom_b {
        t.intern_value(1, &format!("b{v}")).unwrap();
    }
    for &(a, b) in rows {
        t.push_row(&[&(a % dom_a).to_string(), &format!("b{}", b % dom_b)], &[])
            .unwrap();
    }
    t
}

fn input(t: &RtTable, k: usize, fanout: usize) -> RelationalInput<'_> {
    RelationalInput {
        table: t,
        qi_attrs: vec![0, 1],
        hierarchies: vec![
            auto_hierarchy(t.pool(0), AttributeKind::Numeric, fanout).unwrap(),
            auto_hierarchy(t.pool(1), AttributeKind::Categorical, fanout).unwrap(),
        ],
        k,
    }
}

fn rows_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..64, 0usize..64), 4..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incognito_kernel_matches_naive(
        rows in rows_strategy(),
        dom_a in 2usize..12,
        dom_b in 2usize..8,
        k in 2usize..5,
        fanout in 2usize..4,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, dom_b);
        let i = input(&t, k, fanout);
        let fast = incognito::anonymize_with(&i, Counting::Kernel).expect("feasible");
        let slow = incognito::anonymize_with(&i, Counting::Naive).expect("feasible");
        prop_assert_eq!(fast.anon, slow.anon);
    }

    #[test]
    fn topdown_kernel_matches_naive(
        rows in rows_strategy(),
        dom_a in 2usize..12,
        dom_b in 2usize..8,
        k in 2usize..5,
        fanout in 2usize..4,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, dom_b);
        let i = input(&t, k, fanout);
        let fast = topdown::anonymize_with(&i, Counting::Kernel).expect("feasible");
        let slow = topdown::anonymize_with(&i, Counting::Naive).expect("feasible");
        prop_assert_eq!(fast.anon, slow.anon);
    }

    #[test]
    fn bottomup_kernel_matches_naive(
        rows in rows_strategy(),
        dom_a in 2usize..12,
        dom_b in 2usize..8,
        k in 2usize..5,
        fanout in 2usize..4,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, dom_b);
        let i = input(&t, k, fanout);
        let fast = bottomup::anonymize_with(&i, Counting::Kernel).expect("feasible");
        let slow = bottomup::anonymize_with(&i, Counting::Naive).expect("feasible");
        prop_assert_eq!(fast.anon, slow.anon);
    }

    #[test]
    fn incognito_kernel_invariant_under_thread_count(
        rows in rows_strategy(),
        k in 2usize..5,
        fanout in 2usize..4,
    ) {
        prop_assume!(rows.len() >= k);
        let _guard = GLOBALS.lock().unwrap();
        let t = build_table(&rows, 12, 8);
        let i = input(&t, k, fanout);
        secreta_parallel::set_threads(1);
        let base = incognito::anonymize_with(&i, Counting::Kernel).expect("feasible");
        for threads in [2usize, 8] {
            secreta_parallel::set_threads(threads);
            let out = incognito::anonymize_with(&i, Counting::Kernel).expect("feasible");
            prop_assert_eq!(&base.anon, &out.anon, "threads={}", threads);
        }
        secreta_parallel::set_threads(0);
    }
}
