//! Property tests of the relational algorithms: privacy, truthfulness
//! and minimality invariants on randomized inputs.

use proptest::prelude::*;
use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
use secreta_hierarchy::auto_hierarchy;
use secreta_metrics::{gcp, GenEntry};
use secreta_relational::common::min_class_size;
use secreta_relational::{is_k_anonymous, RelationalAlgorithm, RelationalInput};

fn build_table(rows: &[(usize, usize)], dom_a: usize, dom_b: usize) -> RtTable {
    let schema = Schema::new(vec![Attribute::numeric("A"), Attribute::categorical("B")]).unwrap();
    let mut t = RtTable::new(schema);
    for v in 0..dom_a {
        t.intern_value(0, &v.to_string()).unwrap();
    }
    for v in 0..dom_b {
        t.intern_value(1, &format!("b{v}")).unwrap();
    }
    for &(a, b) in rows {
        t.push_row(&[&(a % dom_a).to_string(), &format!("b{}", b % dom_b)], &[])
            .unwrap();
    }
    t
}

fn input(t: &RtTable, k: usize, fanout: usize) -> RelationalInput<'_> {
    RelationalInput {
        table: t,
        qi_attrs: vec![0, 1],
        hierarchies: vec![
            auto_hierarchy(t.pool(0), AttributeKind::Numeric, fanout).unwrap(),
            auto_hierarchy(t.pool(1), AttributeKind::Categorical, fanout).unwrap(),
        ],
        k,
    }
}

fn rows_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..64, 0usize..64), 4..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_satisfy_k_anonymity(
        rows in rows_strategy(),
        dom_a in 2usize..12,
        dom_b in 2usize..8,
        k in 2usize..5,
        fanout in 2usize..4,
        seed in 0u64..100,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, dom_b);
        for algo in RelationalAlgorithm::all() {
            let i = input(&t, k, fanout);
            let out = algo.run(&i, seed).expect("k <= n is feasible");
            prop_assert!(is_k_anonymous(&out.anon, k), "{algo:?}");
            let hs = input(&t, k, fanout).hierarchies;
            prop_assert!(
                out.anon.is_truthful(&t, |a| Some(hs[a].clone()), None),
                "{algo:?}"
            );
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&g), "{algo:?}: gcp {g}");
        }
    }

    #[test]
    fn incognito_result_is_minimal_full_domain(
        rows in rows_strategy(),
        dom_a in 2usize..10,
        k in 2usize..4,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, 4);
        let i = input(&t, k, 2);
        let out = RelationalAlgorithm::Incognito.run(&i, 0).expect("feasible");
        let hs = &i.hierarchies;

        // recover the chosen per-attribute levels from the output
        let mut levels = Vec::new();
        for (pos, col) in out.anon.rel.iter().enumerate() {
            let GenEntry::Node(node) = &col.domain[0] else {
                panic!("Incognito emits node entries");
            };
            levels.push(hs[pos].height() - hs[pos].depth(*node));
        }

        // minimality: reducing any coordinate by one must break
        // k-anonymity
        for pos in 0..levels.len() {
            if levels[pos] == 0 {
                continue;
            }
            let mut reduced = levels.clone();
            reduced[pos] -= 1;
            let m = min_class_size(&t, &i.qi_attrs, |p, v| {
                hs[p].generalize(v, reduced[p])
            });
            prop_assert!(
                m < k,
                "node {levels:?} is not minimal: {reduced:?} still k-anonymous"
            );
        }
    }

    #[test]
    fn duplicated_datasets_need_no_generalization(
        base in prop::collection::vec((0usize..6, 0usize..6), 2..10),
        k in 2usize..4,
    ) {
        // replicate every record k times: already k-anonymous
        let mut rows = Vec::new();
        for &r in &base {
            for _ in 0..k {
                rows.push(r);
            }
        }
        let t = build_table(&rows, 6, 6);
        for algo in [
            RelationalAlgorithm::Incognito,
            RelationalAlgorithm::TopDown,
            RelationalAlgorithm::BottomUp,
        ] {
            let i = input(&t, k, 2);
            let out = algo.run(&i, 0).expect("feasible");
            let hs = input(&t, k, 2).hierarchies;
            let g = gcp(&t, &out.anon, |a| Some(hs[a].clone()));
            prop_assert!(
                g.abs() < 1e-12,
                "{algo:?} must keep duplicated data untouched, gcp={g}"
            );
        }
    }

    #[test]
    fn cluster_optimized_matches_reference(
        rows in rows_strategy(),
        dom_a in 2usize..12,
        dom_b in 2usize..8,
        k in 2usize..5,
        seed in 0u64..100,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, dom_a, dom_b);
        let i = input(&t, k, 3);
        let fast = secreta_relational::cluster::anonymize(&i, seed).expect("feasible");
        let slow = secreta_relational::cluster::anonymize_reference(&i, seed).expect("feasible");
        prop_assert_eq!(fast.anon, slow.anon);
    }

    #[test]
    fn cluster_output_invariant_under_thread_count(
        rows in rows_strategy(),
        k in 2usize..5,
        seed in 0u64..50,
        threads in 2usize..6,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, 10, 6);
        let i = input(&t, k, 3);
        secreta_parallel::set_threads(1);
        let sequential = secreta_relational::cluster::anonymize(&i, seed).expect("feasible");
        secreta_parallel::set_threads(threads);
        let parallel = secreta_relational::cluster::anonymize(&i, seed).expect("feasible");
        secreta_parallel::set_threads(0);
        prop_assert_eq!(sequential.anon, parallel.anon);
    }

    #[test]
    fn cluster_classes_at_least_k_and_at_most_n(
        rows in rows_strategy(),
        k in 2usize..6,
        seed in 0u64..50,
    ) {
        prop_assume!(rows.len() >= k);
        let t = build_table(&rows, 10, 6);
        let i = input(&t, k, 3);
        let out = RelationalAlgorithm::Cluster.run(&i, seed).expect("feasible");
        let (sizes, _) = out.anon.equivalence_classes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), t.n_rows());
        for s in sizes {
            prop_assert!(s >= k);
        }
    }
}
