//! Per-run execution limits: soft deadlines and cooperative cancellation.
//!
//! A [`Limits`] value rides on the run's [`Recorder`](crate::Recorder) and is
//! checked at every phase boundary the recorder already sees
//! ([`Recorder::span`](crate::Recorder::span) /
//! [`Recorder::record_window`](crate::Recorder::record_window)). When the
//! budget is exhausted or the [`CancelToken`] has been tripped, the check
//! raises a panic whose payload is the typed [`Cancelled`] value; the
//! evaluator's per-job `catch_unwind` downcasts it back into a structured
//! run error. Algorithm code needs no changes — any code instrumented
//! enough to be profiled is instrumented enough to be cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled; used as the panic payload raised by
/// [`Limits::check`] so an unwinding handler can tell cooperative
/// cancellation apart from an organic panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cancelled {
    /// The run exceeded its soft deadline.
    DeadlineExceeded {
        /// The configured budget, in milliseconds.
        limit_ms: u64,
    },
    /// The run's [`CancelToken`] was tripped externally.
    Requested,
    /// The process peak RSS crossed the run's memory budget.
    BudgetExceeded {
        /// The configured budget, in bytes.
        limit_bytes: u64,
        /// The peak RSS observed at the tripping check, in bytes.
        observed_bytes: u64,
    },
}

/// A shared flag for cooperatively cancelling in-flight runs; cloning
/// produces handles to the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token: every run checking it cancels at its next
    /// phase boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Execution limits for one run: an optional wall-clock budget
/// (measured from `started`), an optional cancellation token, and an
/// optional memory budget checked against the process peak RSS.
#[derive(Debug, Clone)]
pub struct Limits {
    started: Instant,
    budget: Option<Duration>,
    cancel: Option<CancelToken>,
    mem_budget: Option<u64>,
}

impl Limits {
    /// Limits clocked from now.
    pub fn new(budget: Option<Duration>, cancel: Option<CancelToken>) -> Limits {
        Limits {
            started: Instant::now(),
            budget,
            cancel,
            mem_budget: None,
        }
    }

    /// Also enforce a memory budget of `bytes`: each check samples the
    /// process peak RSS ([`crate::mem::peak_rss_bytes`]) and cancels
    /// the run once it crosses the budget. This is the coarse runtime
    /// backstop behind the data layer's deterministic accounting — on
    /// platforms without an RSS sample it is inert.
    pub fn with_mem_budget(mut self, bytes: u64) -> Limits {
        self.mem_budget = Some(bytes);
        self
    }

    /// Raise the typed [`Cancelled`] panic if the deadline has passed,
    /// the memory budget is crossed, or the token is tripped;
    /// otherwise return normally.
    pub fn check(&self) {
        if let Some(budget) = self.budget {
            if self.started.elapsed() > budget {
                std::panic::panic_any(Cancelled::DeadlineExceeded {
                    limit_ms: budget.as_millis() as u64,
                });
            }
        }
        if let Some(limit_bytes) = self.mem_budget {
            if let Some(observed_bytes) = crate::mem::peak_rss_bytes() {
                if observed_bytes > limit_bytes {
                    std::panic::panic_any(Cancelled::BudgetExceeded {
                        limit_bytes,
                        observed_bytes,
                    });
                }
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                std::panic::panic_any(Cancelled::Requested);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_of(limits: &Limits) -> Cancelled {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| limits.check()))
            .expect_err("limits should have tripped");
        *err.downcast::<Cancelled>().expect("typed payload")
    }

    #[test]
    fn unconstrained_limits_pass() {
        Limits::new(None, None).check();
    }

    #[test]
    fn expired_budget_raises_deadline_payload() {
        let l = Limits::new(Some(Duration::ZERO), None);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(payload_of(&l), Cancelled::DeadlineExceeded { limit_ms: 0 });
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn crossed_mem_budget_raises_budget_payload() {
        // a 1-byte budget is always below the live peak RSS
        let l = Limits::new(None, None).with_mem_budget(1);
        match payload_of(&l) {
            Cancelled::BudgetExceeded {
                limit_bytes,
                observed_bytes,
            } => {
                assert_eq!(limit_bytes, 1);
                assert!(observed_bytes > 1);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // a huge budget passes
        Limits::new(None, None).with_mem_budget(u64::MAX).check();
    }

    #[test]
    fn tripped_token_raises_requested_payload() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let l = Limits::new(None, Some(token.clone()));
        l.check();
        token.cancel();
        assert_eq!(payload_of(&l), Cancelled::Requested);
    }
}
