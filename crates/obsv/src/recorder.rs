//! The recording handle and its thread-local installation.
//!
//! A [`Recorder`] is created per run (disabled by default), installed
//! as the current thread's recorder for the duration of the run, and
//! drained into a [`RunProfile`] at the end. Instrumentation sites
//! grab the current handle once ([`current`]) and call [`Recorder::span`]
//! / [`Recorder::count`] on it; on a disabled handle every call is a
//! no-op behind a single pointer-sized branch, so instrumented code
//! pays nothing measurable when observability is off.

use crate::limits::Limits;
use crate::mem::peak_rss_bytes;
use crate::profile::{ProfileSpan, RunProfile};
use crate::trace::TraceSink;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded span while the run is still in flight.
#[derive(Debug)]
struct SpanRec {
    name: String,
    parent: Option<usize>,
    start: Duration,
    end: Option<Duration>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRec>,
    /// Indices of explicitly opened (guard-held) spans, innermost last.
    stack: Vec<usize>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
    counters: Mutex<BTreeMap<String, u64>>,
    sink: Option<TraceSink>,
}

/// A per-run recording handle: cheap to clone, thread-safe, and a
/// no-op in its disabled state.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    limits: Option<Arc<Limits>>,
}

impl Recorder {
    /// The no-op recorder: every method returns immediately.
    pub fn disabled() -> Recorder {
        Recorder {
            inner: None,
            limits: None,
        }
    }

    /// A live recorder; its epoch (span offset zero) is now.
    pub fn enabled() -> Recorder {
        Recorder::with_sink(None)
    }

    /// A live recorder that renders its profile to `sink` as NDJSON
    /// when finished.
    pub fn with_sink(sink: Option<TraceSink>) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
                counters: Mutex::new(BTreeMap::new()),
                sink,
            })),
            limits: None,
        }
    }

    /// Attach execution limits: every subsequent [`Recorder::span`] /
    /// [`Recorder::record_window`] call first runs [`Limits::check`],
    /// so a run over budget cancels at its next phase boundary even
    /// when profiling itself is disabled.
    pub fn with_limits(mut self, limits: Limits) -> Recorder {
        self.limits = Some(Arc::new(limits));
        self
    }

    /// Whether recording is live (false for the disabled handle).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a named span; it closes (and records its duration) when
    /// the returned guard drops. Nested opens build the span tree.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(limits) = &self.limits {
            limits.check();
        }
        let Some(inner) = &self.inner else {
            return SpanGuard { rec: None, idx: 0 };
        };
        let start = inner.epoch.elapsed();
        let mut st = inner.state.lock().expect("recorder state never poisoned");
        let idx = st.spans.len();
        let parent = st.stack.last().copied();
        st.spans.push(SpanRec {
            name: name.to_owned(),
            parent,
            start,
            end: None,
        });
        st.stack.push(idx);
        SpanGuard {
            rec: Some(inner.clone()),
            idx,
        }
    }

    /// Record a completed wall-clock window `[start, end]` as a span
    /// named `name`. Completed top-level spans that began inside the
    /// window are adopted as its children — this is how the flat
    /// `PhaseTimer` windows of an outer algorithm become parents of a
    /// delegated sub-algorithm's phases.
    pub fn record_window(&self, name: &str, start: Instant, end: Instant) {
        if let Some(limits) = &self.limits {
            limits.check();
        }
        let Some(inner) = &self.inner else { return };
        let s = start
            .checked_duration_since(inner.epoch)
            .unwrap_or(Duration::ZERO);
        let e = end
            .checked_duration_since(inner.epoch)
            .unwrap_or(Duration::ZERO);
        let mut st = inner.state.lock().expect("recorder state never poisoned");
        let idx = st.spans.len();
        let parent = st.stack.last().copied();
        st.spans.push(SpanRec {
            name: name.to_owned(),
            parent,
            start: s,
            end: Some(e),
        });
        // adopt completed root spans whose lifetime falls inside the
        // window (they ran while this phase was the open one)
        for i in 0..idx {
            let r = &st.spans[i];
            if r.parent == parent && i != idx && r.start >= s && r.end.is_some_and(|re| re <= e) {
                st.spans[i].parent = Some(idx);
            }
        }
    }

    /// Add `n` to the monotonic counter called `name`. Call sites
    /// batch (accumulate locally, flush once per phase or loop), so
    /// the lock is cold.
    pub fn count(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        if n == 0 {
            return;
        }
        let mut counters = inner.counters.lock().expect("counters never poisoned");
        *counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Close any still-open spans and drain the recording into a
    /// [`RunProfile`]; renders the NDJSON trace (labelled `label`) to
    /// the sink when one is attached. Returns `None` on a disabled
    /// recorder.
    pub fn finish(&self, label: &str) -> Option<RunProfile> {
        let inner = self.inner.as_ref()?;
        let now = inner.epoch.elapsed();
        let mut st = inner.state.lock().expect("recorder state never poisoned");
        st.stack.clear();
        for s in st.spans.iter_mut() {
            s.end.get_or_insert(now);
        }

        // assemble the forest: children keep execution (start) order
        let n = st.spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for i in 0..n {
            match st.spans[i].parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn build(spans: &[SpanRec], children: &[Vec<usize>], i: usize) -> ProfileSpan {
            let mut kids: Vec<ProfileSpan> = children[i]
                .iter()
                .map(|&c| build(spans, children, c))
                .collect();
            kids.sort_by_key(|k| k.start);
            ProfileSpan {
                name: spans[i].name.clone(),
                start: spans[i].start,
                duration: spans[i].end.expect("closed above") - spans[i].start,
                children: kids,
            }
        }
        let mut spans: Vec<ProfileSpan> = roots
            .iter()
            .map(|&r| build(&st.spans, &children, r))
            .collect();
        spans.sort_by_key(|s| s.start);
        drop(st);

        let counters: Vec<(String, u64)> = inner
            .counters
            .lock()
            .expect("counters never poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let profile = RunProfile {
            spans,
            counters,
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        };
        if let Some(sink) = &inner.sink {
            sink.write_lines(&crate::trace::render_run(label, &profile));
        }
        Some(profile)
    }
}

/// RAII guard returned by [`Recorder::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Option<Arc<Inner>>,
    idx: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.rec else { return };
        let now = inner.epoch.elapsed();
        let mut st = inner.state.lock().expect("recorder state never poisoned");
        if st.spans[self.idx].end.is_none() {
            st.spans[self.idx].end = Some(now);
        }
        // pop this span (and, defensively, anything opened above it
        // that leaked without closing)
        while let Some(&top) = st.stack.last() {
            st.stack.pop();
            if top == self.idx {
                break;
            }
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Recorder> = RefCell::new(Recorder::disabled());
}

/// The recorder installed on this thread (disabled when none is).
/// Instrumented code fetches this once per run, not per event.
pub fn current() -> Recorder {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `rec` as this thread's current recorder until the returned
/// guard drops (the previous recorder is then restored).
#[must_use = "the recorder uninstalls when the guard drops"]
pub fn install(rec: &Recorder) -> InstallGuard {
    let prev = CURRENT.with(|c| c.replace(rec.clone()));
    InstallGuard { prev: Some(prev) }
}

/// Guard returned by [`install`]; restores the previous recorder.
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Recorder>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.replace(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let _g = r.span("x");
        r.count("c", 5);
        r.record_window("w", Instant::now(), Instant::now());
        assert!(r.finish("L").is_none());
    }

    #[test]
    fn explicit_spans_nest_via_guards() {
        let r = Recorder::enabled();
        {
            let _a = r.span("a");
            {
                let _b = r.span("b");
            }
            let _c = r.span("c");
        }
        let p = r.finish("L").unwrap();
        assert_eq!(p.spans.len(), 1);
        assert_eq!(p.spans[0].name, "a");
        let kids: Vec<&str> = p.spans[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(kids, ["b", "c"]);
    }

    #[test]
    fn windows_adopt_completed_spans() {
        let r = Recorder::enabled();
        let t0 = Instant::now();
        {
            let _sub = r.span("sub-phase");
        }
        let t1 = Instant::now();
        r.record_window("parent phase", t0, t1);
        r.record_window("later phase", t1, Instant::now());
        let p = r.finish("L").unwrap();
        let names: Vec<&str> = p.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["parent phase", "later phase"]);
        assert_eq!(p.spans[0].children.len(), 1);
        assert_eq!(p.spans[0].children[0].name, "sub-phase");
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let r = Recorder::enabled();
        r.count("b", 2);
        r.count("a", 1);
        r.count("b", 3);
        r.count("zero", 0);
        let p = r.finish("L").unwrap();
        assert_eq!(p.counters, vec![("a".into(), 1), ("b".into(), 5)]);
    }

    #[test]
    fn counting_is_thread_safe() {
        let r = Recorder::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        r.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.finish("L").unwrap().counter("hits"), Some(400));
    }

    #[test]
    fn install_scopes_the_current_recorder() {
        assert!(!current().is_enabled());
        let r = Recorder::enabled();
        {
            let _g = install(&r);
            assert!(current().is_enabled());
            current().count("c", 1);
        }
        assert!(!current().is_enabled());
        assert_eq!(r.finish("L").unwrap().counter("c"), Some(1));
    }

    #[test]
    fn unclosed_spans_are_closed_at_finish() {
        let r = Recorder::enabled();
        let g = r.span("open");
        let p = r.finish("L").unwrap();
        assert_eq!(p.spans[0].name, "open");
        drop(g); // must not panic or corrupt anything
    }
}
