//! The persisted output of a recorded run: a span tree, counter
//! totals and a peak-memory sample.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One node of the recorded span tree.
///
/// Spans nest: an algorithm phase (`clustering`) may contain the
/// phases of a delegated sub-algorithm or finer-grained explicit
/// spans, giving paths such as `relational partitioning/setup`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSpan {
    /// Span name (one path segment, no `/`).
    pub name: String,
    /// Wall-clock offset from the start of the run.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Nested spans, in execution order.
    pub children: Vec<ProfileSpan>,
}

impl ProfileSpan {
    /// Number of spans in this subtree (including self).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(ProfileSpan::len).sum::<usize>()
    }

    /// Whether the subtree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// Everything the [`Recorder`](crate::Recorder) collected over one
/// run. Serializes round-trip-exactly through JSON (durations are
/// integer seconds + nanos), so it can live inside persisted run
/// manifests.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Top-level spans in execution order (typically the algorithm's
    /// phases plus the framework's `metrics` span).
    pub spans: Vec<ProfileSpan>,
    /// Monotonic counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Peak resident-set size of the process sampled when the run
    /// finished, in bytes; 0 when the platform offers no reading.
    pub peak_rss_bytes: u64,
}

impl RunProfile {
    /// Wall-clock total: the sum of *top-level* span durations.
    /// Children are contained in their parents and are not re-added.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// The counter called `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Flatten the span tree into `(path, depth, duration)` rows in
    /// execution order, with `/`-joined paths (`clustering/assign`).
    pub fn flat(&self) -> Vec<(String, usize, Duration)> {
        fn walk(
            out: &mut Vec<(String, usize, Duration)>,
            prefix: &str,
            depth: usize,
            s: &ProfileSpan,
        ) {
            let path = if prefix.is_empty() {
                s.name.clone()
            } else {
                format!("{prefix}/{}", s.name)
            };
            out.push((path.clone(), depth, s.duration));
            for c in &s.children {
                walk(out, &path, depth + 1, c);
            }
        }
        let mut out = Vec::new();
        for s in &self.spans {
            walk(&mut out, "", 0, s);
        }
        out
    }

    /// Render the profile as the aligned phase/counter table the CLI
    /// prints: indented span rows with durations and share of total,
    /// followed by counter totals and the peak-RSS sample.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total().as_secs_f64() * 1e3;
        let _ = writeln!(out, "  {:<40} {:>12} {:>7}", "phase", "ms", "%");
        for (path, depth, d) in self.flat() {
            let name = path.rsplit('/').next().unwrap_or(&path);
            let ms = d.as_secs_f64() * 1e3;
            let pct = if total > 0.0 { 100.0 * ms / total } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<40} {:>12.3} {:>6.1}%",
                format!("{}{}", "  ".repeat(depth), name),
                ms,
                pct
            );
        }
        let _ = writeln!(out, "  {:<40} {:>12.3} {:>6.1}%", "total", total, 100.0);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  {:<40} {:>12}", "counter", "n");
            for (name, n) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {n:>12}");
            }
        }
        if self.peak_rss_bytes > 0 {
            let _ = writeln!(
                out,
                "  peak RSS: {:.1} MiB",
                self.peak_rss_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunProfile {
        RunProfile {
            spans: vec![
                ProfileSpan {
                    name: "clustering".into(),
                    start: Duration::ZERO,
                    duration: Duration::from_millis(10),
                    children: vec![ProfileSpan {
                        name: "setup".into(),
                        start: Duration::from_millis(1),
                        duration: Duration::from_millis(2),
                        children: vec![],
                    }],
                },
                ProfileSpan {
                    name: "recode".into(),
                    start: Duration::from_millis(10),
                    duration: Duration::from_millis(5),
                    children: vec![],
                },
            ],
            counters: vec![("cluster/ncp_evals".into(), 42)],
            peak_rss_bytes: 1024 * 1024,
        }
    }

    #[test]
    fn total_sums_top_level_only() {
        assert_eq!(sample().total(), Duration::from_millis(15));
    }

    #[test]
    fn flat_paths_join_with_slash() {
        let rows = sample().flat();
        assert_eq!(rows[0].0, "clustering");
        assert_eq!(
            rows[1],
            ("clustering/setup".into(), 1, Duration::from_millis(2))
        );
        assert_eq!(rows[2].0, "recode");
    }

    #[test]
    fn counter_lookup() {
        assert_eq!(sample().counter("cluster/ncp_evals"), Some(42));
        assert_eq!(sample().counter("missing"), None);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: RunProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn table_lists_phases_counters_and_rss() {
        let t = sample().render_table();
        assert!(t.contains("clustering"));
        assert!(t.contains("  setup"), "children are indented");
        assert!(t.contains("cluster/ncp_evals"));
        assert!(t.contains("peak RSS"));
    }

    #[test]
    fn span_len_counts_subtree() {
        let p = sample();
        assert_eq!(p.spans[0].len(), 2);
        assert!(!p.spans[0].is_empty());
        assert!(p.spans[1].is_empty());
    }
}
