//! NDJSON trace streams.
//!
//! A [`TraceSink`] is a shared, line-buffered destination for trace
//! records: one JSON object per line, safe to write from concurrent
//! sweep jobs (each run's batch of lines is appended under one lock,
//! so lines from different runs never interleave mid-record).
//!
//! Record shapes (`ev` discriminates):
//!
//! ```json
//! {"ev":"span","run":"CLUSTER+NCP","path":"clustering/setup","start_us":12,"dur_us":340}
//! {"ev":"counter","run":"CLUSTER+NCP","name":"cluster/ncp_evals","n":69420}
//! {"ev":"run","run":"CLUSTER+NCP","total_us":99104,"peak_rss_bytes":5435392,"spans":6,"counters":3}
//! {"ev":"cache","sweep":"ab12…","hits":3,"misses":0,"failures":0}
//! ```

use crate::profile::RunProfile;
use serde::Value;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A cloneable handle on a shared NDJSON destination.
#[derive(Clone)]
pub struct TraceSink {
    out: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl TraceSink {
    /// Wrap any writer.
    pub fn new(w: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            out: Arc::new(Mutex::new(w)),
        }
    }

    /// Create (truncate) a file sink at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<TraceSink> {
        let f = std::fs::File::create(path)?;
        Ok(TraceSink::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// A sink that accumulates into a shared buffer (tests and
    /// in-process consumers).
    pub fn buffer() -> (TraceSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = TraceSink::new(Box::new(SharedBuf(buf.clone())));
        (sink, buf)
    }

    /// Append pre-rendered NDJSON lines atomically with respect to
    /// other writers of this sink, then flush.
    pub fn write_lines(&self, lines: &str) {
        let mut out = self.out.lock().expect("trace sink never poisoned");
        // trace output is best-effort: a full disk must not fail a run
        let _ = out.write_all(lines.as_bytes());
        let _ = out.flush();
    }

    /// Append one record as a single NDJSON line.
    pub fn write_record(&self, record: &Value) {
        let mut line = serde_json::to_string(record).expect("value renders infallibly");
        line.push('\n');
        self.write_lines(&line);
    }
}

struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer never poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Render a finished run's profile as NDJSON lines: one `span` record
/// per span (flattened, paths `/`-joined), one `counter` record per
/// counter, and a closing `run` summary record.
pub fn render_run(label: &str, profile: &RunProfile) -> String {
    let mut out = String::new();
    let spans = profile.flat();
    for (path, _, d) in &spans {
        let rec = obj(vec![
            ("ev", Value::Str("span".into())),
            ("run", Value::Str(label.to_owned())),
            ("path", Value::Str(path.clone())),
            ("dur_us", Value::U64(d.as_micros() as u64)),
        ]);
        out.push_str(&serde_json::to_string(&rec).expect("value renders infallibly"));
        out.push('\n');
    }
    for (name, n) in &profile.counters {
        let rec = obj(vec![
            ("ev", Value::Str("counter".into())),
            ("run", Value::Str(label.to_owned())),
            ("name", Value::Str(name.clone())),
            ("n", Value::U64(*n)),
        ]);
        out.push_str(&serde_json::to_string(&rec).expect("value renders infallibly"));
        out.push('\n');
    }
    let rec = obj(vec![
        ("ev", Value::Str("run".into())),
        ("run", Value::Str(label.to_owned())),
        ("total_us", Value::U64(profile.total().as_micros() as u64)),
        ("peak_rss_bytes", Value::U64(profile.peak_rss_bytes)),
        ("spans", Value::U64(spans.len() as u64)),
        ("counters", Value::U64(profile.counters.len() as u64)),
    ]);
    out.push_str(&serde_json::to_string(&rec).expect("value renders infallibly"));
    out.push('\n');
    out
}

/// Build the `cache` record the orchestrator appends after a sweep.
pub fn cache_record(sweep_id: &str, hits: u64, misses: u64, failures: u64) -> Value {
    obj(vec![
        ("ev", Value::Str("cache".into())),
        ("sweep", Value::Str(sweep_id.to_owned())),
        ("hits", Value::U64(hits)),
        ("misses", Value::U64(misses)),
        ("failures", Value::U64(failures)),
    ])
}

/// Build the `worker` record a distributed-sweep worker emits when it
/// exits: its lease/execution counters, keyed by the registered
/// `worker/*` counter names (see the counter registry in GUIDE.md).
pub fn worker_record(sweep_id: &str, counters: &[(&str, u64)]) -> Value {
    let mut entries = vec![
        ("ev", Value::Str("worker".into())),
        ("sweep", Value::Str(sweep_id.to_owned())),
        ("pid", Value::U64(u64::from(std::process::id()))),
    ];
    for (name, n) in counters {
        entries.push((name, Value::U64(*n)));
    }
    obj(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileSpan;
    use std::time::Duration;

    fn profile() -> RunProfile {
        RunProfile {
            spans: vec![ProfileSpan {
                name: "clustering".into(),
                start: Duration::ZERO,
                duration: Duration::from_micros(250),
                children: vec![ProfileSpan {
                    name: "setup".into(),
                    start: Duration::ZERO,
                    duration: Duration::from_micros(50),
                    children: vec![],
                }],
            }],
            counters: vec![("x".into(), 7)],
            peak_rss_bytes: 0,
        }
    }

    #[test]
    fn ndjson_lines_parse_individually() {
        let text = render_run("L", &profile());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "2 spans + 1 counter + 1 run summary");
        for l in &lines {
            let v = serde_json::parse_value(l).expect("each line is standalone JSON");
            assert!(v.get("ev").is_some());
        }
        assert!(lines[1].contains("clustering/setup"));
        assert!(lines[3].contains("\"total_us\""));
    }

    #[test]
    fn buffer_sink_accumulates_whole_lines() {
        let (sink, buf) = TraceSink::buffer();
        sink.write_lines(&render_run("A", &profile()));
        sink.write_record(&cache_record("s", 1, 2, 0));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().last().unwrap().contains("\"cache\""));
    }
}
