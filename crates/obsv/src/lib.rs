//! # secreta-obsv
//!
//! Structured tracing and profiling for SECRETA-rs.
//!
//! The paper's Evaluation mode plots "the time needed to execute the
//! algorithm and its different phases" (Figure 3(b)); this crate is
//! the layer that *measures* those phases — and everything beneath
//! them — systematically instead of with one-off timers:
//!
//! * [`recorder`] — the per-run [`Recorder`] handle: hierarchical
//!   spans (nested phases with parent/child relations, e.g.
//!   `relational partitioning/clustering`), monotonic counters (NCP
//!   evaluations, lattice nodes, merges, cache hits) and a
//!   thread-local installation point so instrumented algorithm code
//!   never threads a handle through its signatures. A disabled
//!   recorder costs one branch per call.
//! * [`profile`] — the drained result: a [`RunProfile`] span tree plus
//!   counter totals and a peak-RSS sample, JSON-round-trip-exact so it
//!   can live inside persisted run manifests.
//! * [`trace`] — NDJSON trace streams ([`TraceSink`]): span, counter,
//!   run-summary and cache records, one JSON object per line, written
//!   whole-run-at-a-time so concurrent sweep jobs never interleave.
//! * [`mem`] — peak resident-set sampling (`VmHWM` on Linux).
//!
//! The crate sits below `secreta-metrics`: the flat
//! `PhaseTimer`/`PhaseTimes` surface forwards each phase window here,
//! so every already-instrumented algorithm contributes spans with no
//! changes, and algorithms add finer spans and counters on top.

#![deny(missing_docs)]

pub mod limits;
pub mod mem;
pub mod profile;
pub mod recorder;
pub mod trace;

pub use limits::{CancelToken, Cancelled, Limits};
pub use profile::{ProfileSpan, RunProfile};
pub use recorder::{current, install, InstallGuard, Recorder, SpanGuard};
pub use trace::TraceSink;

use std::time::Duration;

/// Observability settings carried by a session context: whether runs
/// record profiles, where (if anywhere) NDJSON traces stream, and
/// what execution limits each run gets.
#[derive(Debug, Clone, Default)]
pub struct ObsvConfig {
    enabled: bool,
    sink: Option<TraceSink>,
    budget: Option<Duration>,
    cancel: Option<CancelToken>,
    mem_budget: Option<u64>,
}

impl ObsvConfig {
    /// Recording off (the default): runs produce no profile.
    pub fn disabled() -> ObsvConfig {
        ObsvConfig::default()
    }

    /// Recording on, without a trace stream.
    pub fn enabled() -> ObsvConfig {
        ObsvConfig {
            enabled: true,
            ..ObsvConfig::default()
        }
    }

    /// Recording on, with every run's spans/counters streamed to
    /// `sink` as NDJSON.
    pub fn with_trace(sink: TraceSink) -> ObsvConfig {
        ObsvConfig {
            enabled: true,
            sink: Some(sink),
            ..ObsvConfig::default()
        }
    }

    /// Give every run a soft wall-clock deadline: once exceeded, the
    /// run cancels at its next phase boundary (independent of whether
    /// profile recording is on).
    pub fn with_deadline(mut self, budget: Duration) -> ObsvConfig {
        self.budget = Some(budget);
        self
    }

    /// Attach a cancellation token checked by every run at its phase
    /// boundaries.
    pub fn with_cancel(mut self, token: CancelToken) -> ObsvConfig {
        self.cancel = Some(token);
        self
    }

    /// Give every run a memory budget of `bytes`: once the process
    /// peak RSS crosses it, the run cancels at its next phase boundary
    /// with a typed [`Cancelled::BudgetExceeded`] payload instead of
    /// growing until the OOM killer intervenes.
    pub fn with_mem_budget(mut self, bytes: u64) -> ObsvConfig {
        self.mem_budget = Some(bytes);
        self
    }

    /// The configured per-run deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.budget
    }

    /// The configured memory budget in bytes, if any.
    pub fn mem_budget(&self) -> Option<u64> {
        self.mem_budget
    }

    /// Whether runs record profiles.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured trace sink, if any.
    pub fn sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// A fresh per-run recorder honouring these settings. The deadline
    /// clock starts now — each run gets its own budget.
    pub fn recorder(&self) -> Recorder {
        let rec = if self.enabled {
            Recorder::with_sink(self.sink.clone())
        } else {
            Recorder::disabled()
        };
        if self.budget.is_some() || self.cancel.is_some() || self.mem_budget.is_some() {
            let mut limits = Limits::new(self.budget, self.cancel.clone());
            if let Some(bytes) = self.mem_budget {
                limits = limits.with_mem_budget(bytes);
            }
            rec.with_limits(limits)
        } else {
            rec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_produces_matching_recorders() {
        assert!(!ObsvConfig::disabled().recorder().is_enabled());
        assert!(ObsvConfig::enabled().recorder().is_enabled());
        let (sink, buf) = TraceSink::buffer();
        let cfg = ObsvConfig::with_trace(sink);
        assert!(cfg.is_enabled());
        assert!(cfg.sink().is_some());
        let rec = cfg.recorder();
        let _ = rec.finish("L");
        assert!(!buf.lock().unwrap().is_empty(), "finish streams NDJSON");
    }
}
