//! Peak-memory sampling.
//!
//! Reads the process high-water-mark RSS (`VmHWM`) from
//! `/proc/self/status` on Linux. Other platforms (and failures to
//! read) report `None`; callers treat that as "no sample".

/// Peak resident-set size of this process in bytes, if the platform
/// exposes one.
///
/// Note this is a *process-wide* high-water mark: within a sweep it
/// only ever grows, so per-run values record the peak up to (and
/// including) that run, not the run's own footprint in isolation.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract `VmHWM` (reported in kB) from a `/proc/self/status` body.
#[allow(dead_code)] // unused on non-Linux targets
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tsecreta\nVmPeak:\t  999 kB\nVmHWM:\t    5308 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(5308 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_sample_is_positive() {
        assert!(peak_rss_bytes().unwrap() > 0);
    }
}
