//! Regenerate every figure of the SECRETA paper (see DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded outcomes).
//!
//! ```sh
//! cargo run --release -p secreta-bench --bin experiments -- [--fig ID] \
//!     [--rows N] [--out results] [--threads N]
//! ```
//!
//! Figures: f2 f3a f3b f3c f3d f4 x1 x2 x3 x4 x5 (default: all).

use secreta_bench::{basket_session, census_session, reference_rt_spec, rt_session, SEED};
use secreta_core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta_core::metrics::freq;
use secreta_core::policy::{generate_utility, UtilityStrategy};
use secreta_core::{
    anonymizer, compare, evaluate_sweep, export, Configuration, SessionContext, Sweep, VaryingParam,
};
use secreta_plot::{BarChart, GroupedBarChart, Series, XyChart};
use std::path::{Path, PathBuf};

struct Opts {
    fig: String,
    rows: usize,
    out: PathBuf,
    threads: usize,
}

fn parse_opts() -> Opts {
    let mut fig = "all".to_owned();
    let mut rows = 1000usize;
    let mut out = PathBuf::from("results");
    let mut threads = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(tok) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("--{name} expects a value"))
        };
        match tok.as_str() {
            "--fig" => fig = val("fig"),
            "--rows" => rows = val("rows").parse().expect("--rows integer"),
            "--out" => out = PathBuf::from(val("out")),
            "--threads" => threads = val("threads").parse().expect("--threads integer"),
            other => panic!("unknown option {other:?}"),
        }
    }
    Opts {
        fig,
        rows,
        out,
        threads,
    }
}

fn main() {
    let opts = parse_opts();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let run = |name: &str| opts.fig == "all" || opts.fig == name;

    if run("f2") {
        fig2_histograms(&opts);
    }
    if run("f3a") {
        fig3a_are_vs_delta(&opts);
    }
    if run("f3b") {
        fig3b_phase_times(&opts);
    }
    if run("f3c") {
        fig3c_generalized_frequencies(&opts);
    }
    if run("f3d") {
        fig3d_item_frequency_error(&opts);
    }
    if run("f4") {
        fig4_comparison(&opts);
    }
    if run("x1") {
        x1_relational_shootout(&opts);
    }
    if run("x2") {
        x2_transaction_shootout(&opts);
    }
    if run("x3") {
        x3_rt_grid(&opts);
    }
    if run("x4") {
        x4_policy_strategies(&opts);
    }
    if run("x5") {
        x5_rho_uncertainty(&opts);
    }
    println!("\nall requested figures written to {}", opts.out.display());
}

fn write_xy(chart: &XyChart, out: &Path, stem: &str) {
    let (svg, csv) = export::export_xy_chart(chart, out.join(stem)).expect("write chart");
    println!("  -> {} / {}", svg.display(), csv.display());
}

fn write_bar(chart: &BarChart, out: &Path, stem: &str) {
    let (svg, csv) = export::export_bar_chart(chart, out.join(stem)).expect("write chart");
    println!("  -> {} / {}", svg.display(), csv.display());
}

/// F2 — Figure 2 bottom pane: histograms of original attributes.
fn fig2_histograms(opts: &Opts) {
    println!("== F2: attribute histograms of the original dataset");
    let ctx = rt_session(opts.rows);
    for &attr in &ctx.qi_attrs {
        let h = secreta_core::data::stats::relational_histogram(&ctx.table, attr).top_k(12);
        let chart = BarChart::new(
            h.title.clone(),
            h.labels.clone(),
            h.counts.iter().map(|&c| c as f64).collect(),
        );
        let name = ctx
            .table
            .schema()
            .attribute(attr)
            .expect("attr")
            .name
            .clone();
        write_bar(&chart, &opts.out, &format!("f2_histogram_{name}"));
    }
    let items = secreta_core::data::stats::item_histogram(&ctx.table).top_k(15);
    let chart = BarChart::new(
        "Items (top 15)".to_owned(),
        items.labels.clone(),
        items.counts.iter().map(|&c| c as f64).collect(),
    );
    write_bar(&chart, &opts.out, "f2_histogram_items");
}

/// F3a — "ARE scores for various parameters (e.g., for varying δ and
/// fixed k and m)".
fn fig3a_are_vs_delta(opts: &Opts) {
    println!(
        "== F3a: ARE vs δ (fixed k=5, m=2) for {}",
        reference_rt_spec(5, 2, 1).label()
    );
    let ctx = rt_session(opts.rows);
    let spec = reference_rt_spec(5, 2, 1);
    let sweep = Sweep {
        param: VaryingParam::Delta,
        start: 1,
        end: 8,
        step: 1,
    };
    let points = evaluate_sweep(&ctx, &spec, &sweep, opts.threads, SEED);
    let mut chart = XyChart::new("ARE vs δ (k=5, m=2)", "δ", "ARE");
    chart.push(secreta_core::sweep::series_of(spec.label(), &points, |i| {
        i.are
    }));
    let mut rel = XyChart::new("relational GCP vs δ (k=5, m=2)", "δ", "GCP");
    rel.push(secreta_core::sweep::series_of(spec.label(), &points, |i| {
        i.gcp
    }));
    let mut tx = XyChart::new("transaction GCP vs δ (k=5, m=2)", "δ", "tx-GCP");
    tx.push(secreta_core::sweep::series_of(spec.label(), &points, |i| {
        i.tx_gcp
    }));
    for (v, r) in &points {
        if let Ok(p) = r {
            println!(
                "  δ={v}: ARE={:.4} GCP={:.4} txGCP={:.4} verified={}",
                p.indicators.are, p.indicators.gcp, p.indicators.tx_gcp, p.indicators.verified
            );
        }
    }
    write_xy(&chart, &opts.out, "f3a_are_vs_delta");
    write_xy(&rel, &opts.out, "f3a_gcp_vs_delta");
    write_xy(&tx, &opts.out, "f3a_txgcp_vs_delta");
}

/// F3b — "the time needed to execute the algorithm and its different
/// phases".
fn fig3b_phase_times(opts: &Opts) {
    println!("== F3b: per-phase runtime of the reference RT method");
    let ctx = rt_session(opts.rows);
    let spec = reference_rt_spec(5, 2, 4);
    let out = anonymizer::run(&ctx, &spec, SEED).expect("reference run");
    let (labels, values): (Vec<String>, Vec<f64>) = out
        .phases
        .phases
        .iter()
        .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
        .unzip();
    for (l, v) in labels.iter().zip(&values) {
        println!("  {l:<34} {v:>9.2} ms");
    }
    let chart = BarChart::new(format!("phase runtimes — {}", spec.label()), labels, values);
    write_bar(&chart, &opts.out, "f3b_phase_times");

    // runtime vs dataset size (the efficiency curve of the evaluation
    // screen)
    let mut series = Vec::new();
    for &rows in &[opts.rows / 4, opts.rows / 2, opts.rows] {
        let ctx = rt_session(rows.max(50));
        let out = anonymizer::run(&ctx, &spec, SEED).expect("scaling run");
        series.push((rows as f64, out.indicators.runtime_ms));
        println!("  |D|={rows}: {:.1} ms", out.indicators.runtime_ms);
    }
    let mut chart = XyChart::new("runtime vs dataset size", "records", "ms");
    chart.push(Series::new(spec.label(), series));
    write_xy(&chart, &opts.out, "f3b_runtime_vs_size");
}

/// F3c — "the frequency of all generalized values, in a selected
/// relational attribute".
fn fig3c_generalized_frequencies(opts: &Opts) {
    println!("== F3c: generalized-value frequencies (Age) after anonymization");
    let ctx = rt_session(opts.rows);
    let out = anonymizer::run(&ctx, &reference_rt_spec(5, 2, 4), SEED).expect("run");
    let attr = ctx.qi_attrs[0];
    let hist =
        freq::generalized_value_histogram(&ctx.table, &out.anon, attr, ctx.hierarchy_of(attr))
            .expect("Age is anonymized")
            .top_k(15);
    for (l, c) in hist.labels.iter().zip(&hist.counts) {
        println!("  {l:<28} {c}");
    }
    let chart = BarChart::new(
        hist.title.clone(),
        hist.labels.clone(),
        hist.counts.iter().map(|&c| c as f64).collect(),
    );
    write_bar(&chart, &opts.out, "f3c_generalized_age");
}

/// F3d — "the relative error between the frequency of the transaction
/// attribute values, in the original and the anonymized dataset".
fn fig3d_item_frequency_error(opts: &Opts) {
    println!("== F3d: per-item frequency relative error");
    let ctx = rt_session(opts.rows);
    let out = anonymizer::run(&ctx, &reference_rt_spec(5, 2, 4), SEED).expect("run");
    let mut errs = freq::item_frequency_error(&ctx.table, &out.anon, ctx.item_hierarchy.as_ref());
    errs.sort_by_key(|e| std::cmp::Reverse(e.original));
    errs.truncate(20);
    for e in &errs {
        println!(
            "  {:<12} orig={:<5} est={:<8.2} relerr={:.3}",
            e.item, e.original, e.estimated, e.relative_error
        );
    }
    let chart = BarChart::new(
        "relative frequency error (20 most frequent items)".to_owned(),
        errs.iter().map(|e| e.item.clone()).collect(),
        errs.iter().map(|e| e.relative_error).collect(),
    );
    write_bar(&chart, &opts.out, "f3d_item_freq_error");

    // the figure's actual panes contrast the two frequency series
    let grouped = GroupedBarChart::new(
        "item frequencies: original vs anonymized estimate",
        errs.iter().map(|e| e.item.clone()).collect(),
        vec!["original".into(), "estimated".into()],
        vec![
            errs.iter().map(|e| e.original as f64).collect(),
            errs.iter().map(|e| e.estimated).collect(),
        ],
    );
    let (svg, csv) = export::export_grouped_chart(&grouped, opts.out.join("f3d_frequencies"))
        .expect("write chart");
    println!("  -> {} / {}", svg.display(), csv.display());
}

/// F4 — the Comparison mode screen: multiple configurations, varying
/// k, ARE + runtime series.
fn fig4_comparison(opts: &Opts) {
    println!("== F4: comparison of three RT configurations over varying k");
    let ctx = rt_session(opts.rows);
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 5,
        end: 25,
        step: 5,
    };
    let rt = |rel, tx, bounding| MethodSpec::Rt {
        rel,
        tx,
        bounding,
        k: 0,
        m: 2,
        delta: 4,
    };
    let configs = vec![
        Configuration::new(
            rt(RelAlgo::Cluster, TxAlgo::Apriori, Bounding::RMerge),
            sweep,
            SEED,
        ),
        Configuration::new(
            rt(RelAlgo::Cluster, TxAlgo::Apriori, Bounding::TMerge),
            sweep,
            SEED,
        ),
        Configuration::new(
            rt(RelAlgo::Incognito, TxAlgo::Apriori, Bounding::RtMerge),
            sweep,
            SEED,
        ),
    ];
    let result = compare(&ctx, &configs, opts.threads);
    for (label, pts) in result.labels.iter().zip(&result.points) {
        print!("  {label:<48}");
        for (_, r) in pts {
            match r {
                Ok(p) => print!(" {:.3}", p.indicators.are),
                Err(_) => print!("  err "),
            }
        }
        println!();
    }
    write_xy(
        &result.chart("ARE vs k", "ARE", |i| i.are),
        &opts.out,
        "f4_are_vs_k",
    );
    write_xy(
        &result.chart("runtime vs k", "ms", |i| i.runtime_ms),
        &opts.out,
        "f4_runtime_vs_k",
    );
    write_xy(
        &result.chart("GCP vs k", "GCP", |i| i.gcp),
        &opts.out,
        "f4_gcp_vs_k",
    );
}

/// X1 — relational shoot-out: all four algorithms over varying k.
fn x1_relational_shootout(opts: &Opts) {
    println!("== X1: relational algorithms over varying k");
    let ctx = census_session(opts.rows);
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 5,
        end: 50,
        step: 15,
    };
    let configs: Vec<Configuration> = RelAlgo::all()
        .into_iter()
        .map(|algo| Configuration::new(MethodSpec::Relational { algo, k: 0 }, sweep, SEED))
        .collect();
    let result = compare(&ctx, &configs, opts.threads);
    for (label, pts) in result.labels.iter().zip(&result.points) {
        print!("  {label:<32}");
        for (k, r) in pts {
            match r {
                Ok(p) => print!(" k={k}:ARE={:.3}", p.indicators.are),
                Err(_) => print!(" k={k}:err"),
            }
        }
        println!();
    }
    write_xy(
        &result.chart("ARE vs k — relational", "ARE", |i| i.are),
        &opts.out,
        "x1_are",
    );
    write_xy(
        &result.chart("GCP vs k — relational", "GCP", |i| i.gcp),
        &opts.out,
        "x1_gcp",
    );
    write_xy(
        &result.chart("runtime vs k — relational", "ms", |i| i.runtime_ms),
        &opts.out,
        "x1_runtime",
    );
}

/// X2 — transaction shoot-out: all five algorithms over varying k and
/// varying m.
fn x2_transaction_shootout(opts: &Opts) {
    println!("== X2: transaction algorithms over varying k and m");
    // transaction-only data is cheap; 4x the base size keeps itemset
    // supports high enough that the k-sensitivity of the k^m
    // algorithms is visible instead of saturating immediately
    let ctx = basket_session(opts.rows * 4);
    let k_sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 10,
        step: 2,
    };
    let configs: Vec<Configuration> = TxAlgo::all()
        .into_iter()
        .map(|algo| Configuration::new(MethodSpec::Transaction { algo, k: 0, m: 2 }, k_sweep, SEED))
        .collect();
    let result = compare(&ctx, &configs, opts.threads);
    for (label, pts) in result.labels.iter().zip(&result.points) {
        print!("  {label:<24}");
        for (k, r) in pts {
            match r {
                Ok(p) => print!(" k={k}:ARE={:.3}", p.indicators.are),
                Err(_) => print!(" k={k}:err"),
            }
        }
        println!();
    }
    write_xy(
        &result.chart("ARE vs k — transaction", "ARE", |i| i.are),
        &opts.out,
        "x2_are_vs_k",
    );
    write_xy(
        &result.chart("UL vs k — transaction", "UL", |i| i.ul),
        &opts.out,
        "x2_ul_vs_k",
    );
    write_xy(
        &result.chart("runtime vs k — transaction", "ms", |i| i.runtime_ms),
        &opts.out,
        "x2_runtime_vs_k",
    );

    // m sweep for the hierarchy-based algorithms (COAT/PCTA ignore m)
    let m_sweep = Sweep {
        param: VaryingParam::M,
        start: 1,
        end: 3,
        step: 1,
    };
    let m_configs: Vec<Configuration> = [
        TxAlgo::Apriori,
        TxAlgo::Lra { partitions: 4 },
        TxAlgo::Vpa { parts: 4 },
    ]
    .into_iter()
    .map(|algo| Configuration::new(MethodSpec::Transaction { algo, k: 4, m: 0 }, m_sweep, SEED))
    .collect();
    let m_result = compare(&ctx, &m_configs, opts.threads);
    for (label, pts) in m_result.labels.iter().zip(&m_result.points) {
        print!("  {label:<24}");
        for (m, r) in pts {
            match r {
                Ok(p) => print!(" m={m}:ARE={:.3}", p.indicators.are),
                Err(_) => print!(" m={m}:err"),
            }
        }
        println!();
    }
    write_xy(
        &m_result.chart("ARE vs m — transaction (k=4)", "ARE", |i| i.are),
        &opts.out,
        "x2_are_vs_m",
    );
    write_xy(
        &m_result.chart("runtime vs m — transaction (k=4)", "ms", |i| i.runtime_ms),
        &opts.out,
        "x2_runtime_vs_m",
    );
}

/// X3 — the paper's "20 different combinations": the full 4×5 grid
/// under each bounding method at fixed parameters.
fn x3_rt_grid(opts: &Opts) {
    println!("== X3: 4 relational × 5 transaction grid (k=5, m=2, δ=4)");
    let ctx = rt_session(opts.rows / 2); // the grid is 60 runs
    let mut rows_csv =
        String::from("bounding,relational,transaction,are,gcp,tx_gcp,ul,runtime_ms,verified\n");
    for bounding in Bounding::all() {
        println!("  -- {}", bounding.name());
        for rel in RelAlgo::all() {
            for tx in TxAlgo::all() {
                let spec = MethodSpec::Rt {
                    rel,
                    tx,
                    bounding,
                    k: 5,
                    m: 2,
                    delta: 4,
                };
                match anonymizer::run(&ctx, &spec, SEED) {
                    Ok(out) => {
                        let i = &out.indicators;
                        println!(
                            "    {:<24}+{:<8} ARE={:.3} GCP={:.3} txGCP={:.3} {:.0}ms v={}",
                            rel.name(),
                            tx.name(),
                            i.are,
                            i.gcp,
                            i.tx_gcp,
                            i.runtime_ms,
                            i.verified
                        );
                        rows_csv.push_str(&format!(
                            "{},{},{},{},{},{},{},{},{}\n",
                            bounding.name(),
                            rel.name(),
                            tx.name(),
                            i.are,
                            i.gcp,
                            i.tx_gcp,
                            i.ul,
                            i.runtime_ms,
                            i.verified
                        ));
                    }
                    Err(e) => {
                        println!("    {:<24}+{:<8} failed: {e}", rel.name(), tx.name());
                        rows_csv.push_str(&format!(
                            "{},{},{},err,err,err,err,err,false\n",
                            bounding.name(),
                            rel.name(),
                            tx.name()
                        ));
                    }
                }
            }
        }
    }
    let path = opts.out.join("x3_rt_grid.csv");
    std::fs::write(&path, rows_csv).expect("write grid csv");
    println!("  -> {}", path.display());
}

/// X4 — COAT under the automatic policy-generation strategies.
fn x4_policy_strategies(opts: &Opts) {
    println!("== X4: COAT utility under policy strategies (k=30, heavy-tailed basket)");
    // the basket data's Zipf tail leaves rare items to protect, so
    // the utility-policy strategies actually constrain the repairs
    let base = basket_session(opts.rows);
    let strategies: Vec<(&str, Option<UtilityStrategy>)> = vec![
        ("unconstrained", Some(UtilityStrategy::Unconstrained)),
        (
            "freq-bands-8",
            Some(UtilityStrategy::FrequencyBands { bands: 8 }),
        ),
        (
            "freq-bands-20",
            Some(UtilityStrategy::FrequencyBands { bands: 20 }),
        ),
        (
            "hierarchy-d3",
            Some(UtilityStrategy::HierarchyLevel { depth: 3 }),
        ),
        (
            "hierarchy-d5",
            Some(UtilityStrategy::HierarchyLevel { depth: 5 }),
        ),
    ];
    let mut labels = Vec::new();
    let mut uls = Vec::new();
    for (name, strat) in strategies {
        let utility =
            strat.map(|s| generate_utility(&base.table, &s, base.item_hierarchy.as_ref()));
        let ctx = SessionContext {
            utility,
            ..base.clone()
        };
        let spec = MethodSpec::Transaction {
            algo: TxAlgo::Coat,
            k: 30,
            m: 1,
        };
        match anonymizer::run(&ctx, &spec, SEED) {
            Ok(out) => {
                println!(
                    "  {name:<16} UL={:.4} txGCP={:.4} suppressed={} verified={}",
                    out.indicators.ul,
                    out.indicators.tx_gcp,
                    out.anon
                        .tx
                        .as_ref()
                        .map(|t| t.suppressed.len())
                        .unwrap_or(0),
                    out.indicators.verified
                );
                labels.push(name.to_owned());
                uls.push(out.indicators.tx_gcp);
            }
            Err(e) => println!("  {name:<16} failed: {e}"),
        }
    }
    let chart = BarChart::new(
        "COAT transaction loss by utility-policy strategy".to_owned(),
        labels,
        uls,
    );
    write_bar(&chart, &opts.out, "x4_policy_strategies");
}

/// X5 — the paper's announced future-work extension, implemented:
/// ρ-uncertainty (Cao et al. \[2\]). Sweeps ρ and reports utility
/// (residual item occurrences, estimated by 1 − txGCP) and the
/// suppression footprint, side by side in one grouped chart.
fn x5_rho_uncertainty(opts: &Opts) {
    println!("== X5: ρ-uncertainty (SuppressControl vs TDControl) over varying ρ");
    let ctx = basket_session(opts.rows);
    // sensitive items: the rarest decile of the universe
    let supports = secreta_core::data::stats::item_supports(&ctx.table);
    let mut order: Vec<usize> = (0..supports.len()).collect();
    order.sort_by_key(|&i| supports[i]);
    let pool = ctx.table.item_pool().expect("basket has items");
    let sensitive: Vec<String> = order
        .iter()
        .take(supports.len().div_ceil(10))
        .map(|&i| pool.resolve(i as u32).to_owned())
        .collect();
    println!("  {} sensitive items (rarest decile)", sensitive.len());

    let rhos = [0.9, 0.7, 0.5, 0.3, 0.2];
    let mut categories = Vec::new();
    let mut kept_sc = Vec::new();
    let mut kept_td = Vec::new();
    let mut suppressed_sc = Vec::new();
    for &rho in &rhos {
        categories.push(format!("ρ={rho}"));
        for generalize in [false, true] {
            let spec = MethodSpec::Rho {
                rho,
                sensitive: sensitive.clone(),
                max_antecedent: 2,
                generalize,
            };
            let name = if generalize {
                "TDControl"
            } else {
                "SuppressControl"
            };
            match anonymizer::run(&ctx, &spec, SEED) {
                Ok(out) => {
                    let sup = out
                        .anon
                        .tx
                        .as_ref()
                        .map(|t| t.suppressed.len())
                        .unwrap_or(0);
                    println!(
                        "  ρ={rho} {name:<16} txGCP={:.4} suppressed_items={sup} verified={} ({:.0}ms)",
                        out.indicators.tx_gcp,
                        out.indicators.verified,
                        out.indicators.runtime_ms
                    );
                    if generalize {
                        kept_td.push(1.0 - out.indicators.tx_gcp);
                    } else {
                        kept_sc.push(1.0 - out.indicators.tx_gcp);
                        suppressed_sc.push(sup as f64 / ctx.table.item_universe().max(1) as f64);
                    }
                }
                Err(e) => println!("  ρ={rho} {name}: failed: {e}"),
            }
        }
    }
    let chart = GroupedBarChart::new(
        "ρ-uncertainty: utility kept by algorithm, suppression footprint",
        categories,
        vec![
            "kept, SuppressControl".into(),
            "kept, TDControl".into(),
            "suppressed fraction (SC)".into(),
        ],
        vec![kept_sc, kept_td, suppressed_sc],
    );
    let (svg, csv) =
        export::export_grouped_chart(&chart, opts.out.join("x5_rho")).expect("write chart");
    println!("  -> {} / {}", svg.display(), csv.display());
}
