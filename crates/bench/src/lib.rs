//! Shared fixtures for the SECRETA-rs benchmark harness.
//!
//! Every figure of the paper is regenerated from the same seeded
//! datasets so results are comparable across benches and across runs.

use secreta_core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta_core::SessionContext;
use secreta_gen::{DatasetSpec, WorkloadSpec};

pub mod report;

/// Deterministic base seed of the whole harness.
pub const SEED: u64 = 0x5ec2e7a;

/// The standard RT benchmark dataset: census-like demographics plus
/// correlated purchases. `rows` scales the instance.
pub fn rt_dataset(rows: usize) -> DatasetSpec {
    let mut spec = DatasetSpec::adult_like(rows, SEED);
    // a compact, skewed item universe keeps within-cluster k^m
    // satisfiable at bench sizes, so the δ/k trade-offs stay visible
    spec.n_items = 30;
    spec.item_skew = 1.2;
    spec.tx_len = (2, 5);
    spec.correlation = 0.4;
    spec
}

/// A prepared session over [`rt_dataset`] with a 50-query workload.
pub fn rt_session(rows: usize) -> SessionContext {
    let table = rt_dataset(rows).generate();
    // fan-out 2 gives the item hierarchy fine-grained levels, so AA
    // can stop below the root
    let ctx = SessionContext::auto(table, 2).expect("hierarchies build");
    let w = WorkloadSpec {
        n_queries: 50,
        rel_atoms: 1,
        values_per_atom: 3,
        items_per_query: 1,
        seed: SEED,
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

/// A relational-only session (the relational shoot-out).
pub fn census_session(rows: usize) -> SessionContext {
    let table = DatasetSpec::census(rows, SEED).generate();
    let ctx = SessionContext::auto(table, 4).expect("hierarchies build");
    let w = WorkloadSpec {
        n_queries: 50,
        rel_atoms: 2,
        values_per_atom: 3,
        items_per_query: 0,
        seed: SEED,
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

/// A transaction-only session (the transaction shoot-out).
pub fn basket_session(rows: usize) -> SessionContext {
    // a long Zipf tail leaves genuinely rare items for the
    // constraint-based algorithms to protect
    let mut spec = DatasetSpec::basket(rows, 80, SEED);
    spec.item_skew = 1.4;
    spec.tx_len = (2, 6);
    spec.profiles = 4;
    let table = spec.generate();
    let ctx = SessionContext::auto(table, 2).expect("hierarchies build");
    let w = WorkloadSpec {
        n_queries: 50,
        rel_atoms: 0,
        values_per_atom: 1,
        items_per_query: 1,
        seed: SEED,
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

/// The reference RT method of the Figure 3 evaluation scenario.
pub fn reference_rt_spec(k: usize, m: usize, delta: usize) -> MethodSpec {
    MethodSpec::Rt {
        rel: RelAlgo::Cluster,
        tx: TxAlgo::Apriori,
        bounding: Bounding::RMerge,
        k,
        m,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = rt_session(50);
        let b = rt_session(50);
        assert_eq!(a.table.n_rows(), b.table.n_rows());
        for r in 0..50 {
            assert_eq!(a.table.transaction(r), b.table.transaction(r));
        }
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn sessions_have_expected_shapes() {
        assert!(rt_session(30).table.schema().is_rt());
        assert!(census_session(30).item_hierarchy.is_none());
        assert!(basket_session(30).qi_attrs.is_empty());
    }
}
