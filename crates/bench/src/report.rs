//! Versioned benchmark reports with baseline comparison.
//!
//! `secreta bench --all` emits a [`BenchReport`]: a schema-versioned
//! JSON document carrying the suite parameters, a [`Machine`]
//! fingerprint, a CPU-speed calibration constant, and one
//! [`BenchCase`] per measured kernel. A report can later be fed back
//! through `--baseline FILE`: [`compare`] checks that the two reports
//! measured the same thing (schema, suite, rows, seed, threads) and
//! returns per-case deltas of *calibration-normalized* wall times, so
//! a faster or slower CI machine shifts both sides of the ratio and
//! the >25% regression gate tracks real slowdowns instead of host
//! lottery.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version of the report JSON layout. Bump on any breaking change to
/// the structs below; [`compare`] refuses mismatched versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Coarse machine fingerprint recorded in every report. Not used for
/// normalization (that is what `calibration_ms` is for) — it exists so
/// a human reading two reports can see when they came from different
/// hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// `std::env::consts::OS` of the measuring process.
    pub os: String,
    /// `std::env::consts::ARCH` of the measuring process.
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub cpus: usize,
}

/// The fingerprint of the current machine.
pub fn machine_fingerprint() -> Machine {
    Machine {
        os: std::env::consts::OS.to_owned(),
        arch: std::env::consts::ARCH.to_owned(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// One measured case of a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCase {
    /// Stable case id, e.g. `tx/coat` or `metrics/gcp`.
    pub id: String,
    /// Best-of-`reps` wall time in milliseconds.
    pub wall_ms: f64,
    /// Repetitions measured (the minimum is reported).
    pub reps: usize,
}

/// A full `bench --all` result document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version — see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Suite name (`all` for the gate suite).
    pub suite: String,
    /// Dataset rows every case ran at.
    pub rows: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Thread cap the suite ran with (0 = unpinned).
    pub threads: usize,
    /// Where the report was measured.
    pub machine: Machine,
    /// Single-core spin-loop calibration (milliseconds, best of
    /// several) measured by [`calibrate`] just before the cases —
    /// the denominator that makes reports comparable across hosts.
    pub calibration_ms: f64,
    /// The measured cases.
    pub cases: Vec<BenchCase>,
}

/// Per-case outcome of [`compare`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseDelta {
    /// Case id shared by both reports.
    pub id: String,
    /// Baseline wall time (ms).
    pub base_ms: f64,
    /// New wall time (ms).
    pub new_ms: f64,
    /// `(new_ms / new_calibration) / (base_ms / base_calibration) - 1`,
    /// as a percentage; positive = regression.
    pub delta_pct: f64,
}

/// Iterations of the calibration spin loop (one sample).
const CALIBRATE_ITERS: u64 = 10_000_000;
/// Samples taken; the fastest is the calibration constant.
const CALIBRATE_SAMPLES: usize = 5;

/// Measure a fixed single-threaded integer spin loop and return the
/// fastest sample's wall time in milliseconds — a unit of "how fast
/// this machine runs scalar Rust", used to normalize wall times before
/// comparing reports across hosts.
pub fn calibrate() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..CALIBRATE_SAMPLES {
        let start = Instant::now();
        let mut z = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..CALIBRATE_ITERS {
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
            // keep the loop honest: no vectorizing or folding it away
            z = std::hint::black_box(z);
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best {
            best = ms;
        }
    }
    best
}

/// Compare `new` against `base`: verify the reports measured the same
/// suite under the same parameters, then return one [`CaseDelta`] per
/// baseline case (order of the baseline). Errors on schema/parameter
/// mismatch, on a non-positive calibration, and on a baseline case the
/// new report no longer contains; extra new cases are ignored (adding
/// a case must not fail old baselines).
pub fn compare(base: &BenchReport, new: &BenchReport) -> Result<Vec<CaseDelta>, String> {
    if base.schema_version != SCHEMA_VERSION || new.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema mismatch: baseline v{}, new v{}, supported v{SCHEMA_VERSION} \
             (regenerate the baseline with tools/update_bench_baseline.sh)",
            base.schema_version, new.schema_version
        ));
    }
    if base.suite != new.suite {
        return Err(format!(
            "suite mismatch: {:?} vs {:?}",
            base.suite, new.suite
        ));
    }
    if (base.rows, base.seed, base.threads) != (new.rows, new.seed, new.threads) {
        return Err(format!(
            "parameter mismatch: baseline rows={} seed={} threads={}, \
             new rows={} seed={} threads={}",
            base.rows, base.seed, base.threads, new.rows, new.seed, new.threads
        ));
    }
    // rejects NaN and infinities too, not just zero and negatives
    let usable = |c: f64| c.is_finite() && c > 0.0;
    if !usable(base.calibration_ms) || !usable(new.calibration_ms) {
        return Err("non-positive calibration constant".to_owned());
    }
    let mut deltas = Vec::with_capacity(base.cases.len());
    for bc in &base.cases {
        let nc = new
            .cases
            .iter()
            .find(|c| c.id == bc.id)
            .ok_or_else(|| format!("case {:?} missing from the new report", bc.id))?;
        let base_norm = bc.wall_ms / base.calibration_ms;
        let new_norm = nc.wall_ms / new.calibration_ms;
        let delta_pct = if base_norm > 0.0 {
            (new_norm / base_norm - 1.0) * 100.0
        } else {
            0.0
        };
        deltas.push(CaseDelta {
            id: bc.id.clone(),
            base_ms: bc.wall_ms,
            new_ms: nc.wall_ms,
            delta_pct,
        });
    }
    Ok(deltas)
}

/// The deltas exceeding `gate_pct` percent regression.
pub fn regressions(deltas: &[CaseDelta], gate_pct: f64) -> Vec<&CaseDelta> {
    deltas.iter().filter(|d| d.delta_pct > gate_pct).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cases: &[(&str, f64)], calibration_ms: f64) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite: "all".to_owned(),
            rows: 800,
            seed: crate::SEED,
            threads: 2,
            machine: machine_fingerprint(),
            calibration_ms,
            cases: cases
                .iter()
                .map(|&(id, wall_ms)| BenchCase {
                    id: id.to_owned(),
                    wall_ms,
                    reps: 3,
                })
                .collect(),
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report(&[("tx/coat", 12.5), ("metrics/gcp", 0.75)], 30.0);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn identical_reports_have_zero_delta() {
        let r = report(&[("a", 10.0), ("b", 5.0)], 20.0);
        let deltas = compare(&r, &r).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.delta_pct.abs() < 1e-12));
        assert!(regressions(&deltas, 25.0).is_empty());
    }

    #[test]
    fn calibration_normalizes_host_speed() {
        // same workload measured on a machine running everything 2x
        // slower (wall times and calibration both double): no delta
        let base = report(&[("a", 10.0)], 20.0);
        let slow_host = report(&[("a", 20.0)], 40.0);
        let deltas = compare(&base, &slow_host).unwrap();
        assert!(deltas[0].delta_pct.abs() < 1e-12, "{deltas:?}");
        // a genuine 2x slowdown on the same host trips the gate
        let regressed = report(&[("a", 20.0)], 20.0);
        let deltas = compare(&base, &regressed).unwrap();
        assert!((deltas[0].delta_pct - 100.0).abs() < 1e-9);
        assert_eq!(regressions(&deltas, 25.0).len(), 1);
    }

    #[test]
    fn mismatched_reports_are_rejected() {
        let base = report(&[("a", 10.0)], 20.0);
        let mut other = base.clone();
        other.rows = 999;
        assert!(compare(&base, &other).is_err());
        let mut other = base.clone();
        other.schema_version = SCHEMA_VERSION + 1;
        assert!(compare(&base, &other).is_err());
        let mut other = base.clone();
        other.cases.clear();
        assert!(compare(&base, &other).is_err());
        // extra cases in the new report are fine
        let mut other = base.clone();
        other.cases.push(BenchCase {
            id: "new-case".to_owned(),
            wall_ms: 1.0,
            reps: 3,
        });
        assert_eq!(compare(&base, &other).unwrap().len(), 1);
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let c = calibrate();
        assert!(c.is_finite() && c > 0.0);
    }
}
