//! F2 — cost of the Dataset Editor's histogram computations
//! (Figure 2's bottom pane redraws these interactively).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::rt_dataset;
use secreta_core::data::stats;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_histograms");
    for rows in [500usize, 2000, 8000] {
        let table = rt_dataset(rows).generate();
        group.bench_with_input(BenchmarkId::new("relational", rows), &table, |b, t| {
            b.iter(|| stats::relational_histogram(t, 0))
        });
        group.bench_with_input(BenchmarkId::new("items", rows), &table, |b, t| {
            b.iter(|| stats::item_histogram(t))
        });
        group.bench_with_input(BenchmarkId::new("summaries", rows), &table, |b, t| {
            b.iter(|| stats::summarize(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
