//! K1 — the constant-time kernels against their pre-optimization
//! counterparts: Euler-tour LCA vs the parent walk, tabulated NCP,
//! matrix-based minimum-class-size, and the full Cluster hot path
//! (optimized vs reference implementation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::{census_session, SEED};
use secreta_core::hierarchy::NodeId;
use secreta_core::relational::common::{min_class_size, min_class_size_matrix};
use secreta_core::relational::{cluster, RelationalInput};

fn input_of(ctx: &secreta_core::SessionContext, k: usize) -> RelationalInput<'_> {
    RelationalInput {
        table: &ctx.table,
        qi_attrs: ctx.qi_attrs.clone(),
        hierarchies: ctx.hierarchies.clone(),
        k,
    }
}

fn bench_lca(c: &mut Criterion) {
    let ctx = census_session(2000);
    let h = &ctx.hierarchies[0];
    // a deterministic spread of leaf pairs across the domain
    let pairs: Vec<(NodeId, NodeId)> = (0..1024u64)
        .map(|i| {
            let a = (i.wrapping_mul(0x9E37_79B9) % h.n_leaves() as u64) as u32;
            let b = (i.wrapping_mul(0x85EB_CA6B) % h.n_leaves() as u64) as u32;
            (h.leaf(a), h.leaf(b))
        })
        .collect();
    let mut group = c.benchmark_group("lca");
    group.bench_function("euler_o1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(x, y) in &pairs {
                acc = acc.wrapping_add(h.lca(x, y).index());
            }
            black_box(acc)
        })
    });
    group.bench_function("parent_walk", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(x, y) in &pairs {
                acc = acc.wrapping_add(h.lca_walk(x, y).index());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_min_class_size(c: &mut Criterion) {
    let ctx = census_session(2000);
    let input = input_of(&ctx, 10);
    let matrix = input.value_matrix();
    let domains: Vec<usize> = input
        .qi_attrs
        .iter()
        .map(|&a| input.table.domain_size(a))
        .collect();
    let hs = &input.hierarchies;
    let mut group = c.benchmark_group("min_class_size");
    group.bench_function("matrix", |b| {
        b.iter(|| min_class_size_matrix(&matrix, &domains, |pos, v| hs[pos].generalize(v, 1)))
    });
    group.bench_function("table", |b| {
        b.iter(|| {
            min_class_size(input.table, &input.qi_attrs, |pos, v| {
                hs[pos].generalize(v, 1)
            })
        })
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let ctx = census_session(2000);
    let input = input_of(&ctx, 10);
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("optimized", "n2000"), &input, |b, i| {
        b.iter(|| cluster::anonymize(i, SEED).expect("run"))
    });
    group.bench_with_input(BenchmarkId::new("reference", "n2000"), &input, |b, i| {
        b.iter(|| cluster::anonymize_reference(i, SEED).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_lca, bench_min_class_size, bench_cluster);
criterion_main!(benches);
