//! F3a — one point of the "ARE vs δ" sweep: a full RT anonymization
//! plus indicator computation at fixed parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::{reference_rt_spec, rt_session, SEED};
use secreta_core::anonymizer;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sweep_point");
    group.sample_size(10);
    let ctx = rt_session(600);
    for delta in [1usize, 3, 6] {
        let spec = reference_rt_spec(10, 2, delta);
        group.bench_with_input(BenchmarkId::new("delta", delta), &spec, |b, s| {
            b.iter(|| anonymizer::run(&ctx, s, SEED).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
