//! F3b — the individual phases of the reference RT method, so the
//! per-phase runtime plot has microbenchmark backing.

use criterion::{criterion_group, criterion_main, Criterion};
use secreta_bench::{rt_session, SEED};
use secreta_core::relational::{RelationalAlgorithm, RelationalInput};
use secreta_core::transaction::{TransactionAlgorithm, TransactionInput};

fn bench(c: &mut Criterion) {
    let ctx = rt_session(600);
    let mut group = c.benchmark_group("fig3_phases");
    group.sample_size(10);

    group.bench_function("relational_partitioning", |b| {
        let input = RelationalInput {
            table: &ctx.table,
            qi_attrs: ctx.qi_attrs.clone(),
            hierarchies: ctx.hierarchies.clone(),
            k: 10,
        };
        b.iter(|| RelationalAlgorithm::Cluster.run(&input, SEED).expect("run"))
    });

    group.bench_function("transaction_anonymization", |b| {
        let h = ctx.item_hierarchy.as_ref().expect("item hierarchy");
        let input = TransactionInput::km(&ctx.table, 10, 2, h);
        b.iter(|| TransactionAlgorithm::Apriori.run(&input).expect("run"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
