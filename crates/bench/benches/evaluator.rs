//! F1 — the Method Evaluator/Comparator's threaded fan-out (the
//! "N threads" box of the architecture figure): same batch of jobs on
//! 1, 2 and 4 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::{census_session, SEED};
use secreta_core::config::{MethodSpec, RelAlgo};
use secreta_core::evaluator::{run_many, Job};

fn bench(c: &mut Criterion) {
    let ctx = census_session(500);
    let jobs: Vec<Job> = [5usize, 10, 15, 20]
        .into_iter()
        .map(|k| Job {
            spec: MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k,
            },
            seed: SEED,
        })
        .collect();
    let mut group = c.benchmark_group("evaluator_fanout");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| run_many(&ctx, &jobs, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
