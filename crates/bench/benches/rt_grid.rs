//! X3 — representative cells of the 4×5 combination grid under each
//! bounding method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::{rt_session, SEED};
use secreta_core::anonymizer;
use secreta_core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};

fn bench(c: &mut Criterion) {
    let ctx = rt_session(400);
    let mut group = c.benchmark_group("rt_grid");
    group.sample_size(10);
    let cells = [
        (RelAlgo::Cluster, TxAlgo::Apriori, Bounding::RMerge),
        (RelAlgo::Cluster, TxAlgo::Pcta, Bounding::TMerge),
        (RelAlgo::Incognito, TxAlgo::Apriori, Bounding::RtMerge),
        (RelAlgo::TopDown, TxAlgo::Vpa { parts: 4 }, Bounding::RMerge),
    ];
    for (rel, tx, bounding) in cells {
        let spec = MethodSpec::Rt {
            rel,
            tx,
            bounding,
            k: 10,
            m: 2,
            delta: 2,
        };
        group.bench_with_input(BenchmarkId::new("combo", spec.label()), &spec, |b, s| {
            b.iter(|| anonymizer::run(&ctx, s, SEED).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
