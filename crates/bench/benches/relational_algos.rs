//! X1 — the four relational algorithms head-to-head at fixed k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::{census_session, SEED};
use secreta_core::relational::{RelationalAlgorithm, RelationalInput};

fn bench(c: &mut Criterion) {
    let ctx = census_session(800);
    let mut group = c.benchmark_group("relational_algos");
    group.sample_size(10);
    for algo in RelationalAlgorithm::all() {
        let input = RelationalInput {
            table: &ctx.table,
            qi_attrs: ctx.qi_attrs.clone(),
            hierarchies: ctx.hierarchies.clone(),
            k: 10,
        };
        group.bench_with_input(BenchmarkId::new("k10", algo.name()), &input, |b, i| {
            b.iter(|| algo.run(i, SEED).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
