//! X2 — the five transaction algorithms head-to-head at fixed k, m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::basket_session;
use secreta_core::transaction::{TransactionAlgorithm, TransactionInput};

fn bench(c: &mut Criterion) {
    let ctx = basket_session(800);
    let h = ctx.item_hierarchy.as_ref().expect("item hierarchy");
    let mut group = c.benchmark_group("transaction_algos");
    group.sample_size(10);
    for algo in TransactionAlgorithm::all() {
        let input = TransactionInput {
            table: &ctx.table,
            k: 5,
            m: 2,
            hierarchy: Some(h),
            privacy: None,
            utility: None,
        };
        group.bench_with_input(
            BenchmarkId::new("k5_m2", algo.to_string()),
            &input,
            |b, i| b.iter(|| algo.run(i).expect("run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
