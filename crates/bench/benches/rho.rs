//! X5 — ρ-uncertainty (SuppressControl) at varying strictness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use secreta_bench::basket_session;
use secreta_core::transaction::rho::{anonymize, RhoParams};
use secreta_core::transaction::TransactionInput;
use secreta_data::ItemId;

fn bench(c: &mut Criterion) {
    let ctx = basket_session(1000);
    let universe = ctx.table.item_universe();
    let sensitive: Vec<ItemId> = (0..(universe / 10).max(1) as u32).map(ItemId).collect();
    let mut group = c.benchmark_group("rho_uncertainty");
    group.sample_size(10);
    for rho_pct in [70u32, 40, 20] {
        let params = RhoParams {
            rho: rho_pct as f64 / 100.0,
            sensitive: sensitive.clone(),
            max_antecedent: 2,
        };
        group.bench_with_input(BenchmarkId::new("rho", rho_pct), &params, |b, p| {
            let input = TransactionInput {
                table: &ctx.table,
                k: 1,
                m: 1,
                hierarchy: None,
                privacy: None,
                utility: None,
            };
            b.iter(|| anonymize(&input, p).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
