//! F4 — a complete Comparison-mode session: two configurations swept
//! over k on the threaded evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use secreta_bench::{rt_session, SEED};
use secreta_core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta_core::{compare, Configuration, Sweep, VaryingParam};

fn bench(c: &mut Criterion) {
    let ctx = rt_session(400);
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 5,
        end: 15,
        step: 5,
    };
    let rt = |rel, bounding| MethodSpec::Rt {
        rel,
        tx: TxAlgo::Apriori,
        bounding,
        k: 0,
        m: 2,
        delta: 2,
    };
    let configs = vec![
        Configuration::new(rt(RelAlgo::Cluster, Bounding::RMerge), sweep, SEED),
        Configuration::new(rt(RelAlgo::Incognito, Bounding::RtMerge), sweep, SEED),
    ];
    let mut group = c.benchmark_group("fig4_comparison");
    group.sample_size(10);
    group.bench_function("two_configs_three_points", |b| {
        b.iter(|| compare(&ctx, &configs, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
