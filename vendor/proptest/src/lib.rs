//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: integer-range, tuple,
//! `prop::collection::vec`, `any::<T>()` and character-class string
//! strategies, `.prop_map`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from
//! a deterministic per-case RNG rather than upstream proptest's
//! shrinking engine: a failure reports the sampled inputs but is not
//! minimized.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    macro_rules! impl_tuples {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }

    impl_tuples! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // ------------------------------------------------- string patterns

    /// String literals act as character-class pattern strategies.
    ///
    /// Supported pattern grammar (covers this workspace's usage):
    /// `[CLASS]{N}`, `[CLASS]{M,N}` where CLASS is a sequence of
    /// literal characters and `a-z` ranges, optionally followed by
    /// `&&[^CLASS]` subtraction. `\` escapes the next character.
    impl Strategy for &'static str {
        type Value = String;

        fn pick(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_pattern(self)
                .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
            assert!(!alphabet.is_empty(), "empty alphabet in pattern {self:?}");
            let span = (hi - lo + 1) as u64;
            let len = lo + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pat: &str) -> Result<(Vec<char>, usize, usize), String> {
        let chars: Vec<char> = pat.chars().collect();
        let mut pos = 0usize;
        let include = parse_class(&chars, &mut pos)?;
        let exclude = if chars[pos..].starts_with(&['&', '&']) {
            pos += 2;
            if chars.get(pos) != Some(&'[') {
                return Err("expected class after &&".into());
            }
            parse_class(&chars, &mut pos)?
        } else {
            Vec::new()
        };
        if chars.get(pos) != Some(&'{') {
            return Err("expected {repetition}".into());
        }
        pos += 1;
        let rep: String = chars[pos..].iter().take_while(|&&c| c != '}').collect();
        pos += rep.len();
        if chars.get(pos) != Some(&'}') || pos + 1 != chars.len() {
            return Err("malformed repetition".into());
        }
        let (lo, hi) = match rep.split_once(',') {
            Some((a, b)) => (
                a.parse().map_err(|_| "bad repetition lower bound")?,
                b.parse().map_err(|_| "bad repetition upper bound")?,
            ),
            None => {
                let n: usize = rep.parse().map_err(|_| "bad repetition count")?;
                (n, n)
            }
        };
        let alphabet: Vec<char> = include
            .into_iter()
            .filter(|c| !exclude.contains(c))
            .collect();
        Ok((alphabet, lo, hi))
    }

    /// Parse a `[...]` class (possibly `[^...]`) starting at `*pos`;
    /// negation is interpreted against printable ASCII.
    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Vec<char>, String> {
        if chars.get(*pos) != Some(&'[') {
            return Err("expected [".into());
        }
        *pos += 1;
        let negated = chars.get(*pos) == Some(&'^');
        if negated {
            *pos += 1;
        }
        let mut set = Vec::new();
        loop {
            match chars.get(*pos) {
                None => return Err("unterminated class".into()),
                Some(']') => {
                    *pos += 1;
                    break;
                }
                Some('\\') => {
                    let c = *chars.get(*pos + 1).ok_or("trailing escape")?;
                    set.push(c);
                    *pos += 2;
                }
                // class intersection: [A&&[B]] keeps chars in both
                Some('&')
                    if chars.get(*pos + 1) == Some(&'&') && chars.get(*pos + 2) == Some(&'[') =>
                {
                    *pos += 2;
                    let rhs = parse_class(chars, pos)?;
                    set.retain(|c| rhs.contains(c));
                }
                Some(&c) => {
                    // range a-b (only when a dash sits between two members)
                    if chars.get(*pos + 1) == Some(&'-')
                        && chars.get(*pos + 2).is_some_and(|&e| e != ']')
                    {
                        let end = chars[*pos + 2];
                        for v in c as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        *pos += 3;
                    } else {
                        set.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        if negated {
            let all: Vec<char> = (0x20u32..=0x7E).filter_map(char::from_u32).collect();
            Ok(all.into_iter().filter(|c| !set.contains(c)).collect())
        } else {
            Ok(set)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator driving case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input; retry with another.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drive `case` until `config.cases` inputs have been accepted.
    ///
    /// `case` returns a description of the sampled inputs plus the
    /// case outcome; failures panic with both.
    pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let max_rejects = (config.cases as u64).saturating_mul(20).max(1000);
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while accepted < config.cases {
            // fixed global salt so runs are reproducible build-to-build
            let seed = 0x5ec2_e7a0_0000_0000u64 ^ attempt.wrapping_mul(0x9E37_79B9);
            let mut rng = TestRng::from_seed(seed);
            let (desc, outcome) = case(&mut rng);
            attempt += 1;
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{test_name}`: too many rejected inputs \
                             ({rejected}) — weaken prop_assume! conditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed at case {accepted}: {msg}\n\
                         inputs: {desc}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            // one tuple strategy over all parameters; per case the
            // sampled tuple is destructured by the declared patterns
            let __strategies = ($(($strat),)+);
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                let __values =
                    $crate::strategy::Strategy::pick(&__strategies, __rng);
                let __desc = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    __values
                );
                let ($($arg,)+) = __values;
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body Ok(()) })();
                (__desc, __outcome)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..17,
            m in 0u32..5,
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!(m < 5);
            let _ = flag;
        }

        #[test]
        fn vec_and_tuple_strategies(
            rows in prop::collection::vec((0usize..10, 0usize..10), 1..20),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 20);
            for (a, b) in &rows {
                prop_assert!(*a < 10 && *b < 10);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_patterns(
            s in "[ -~]{0,12}",
            t in "[!-~&&[^,\"]]{1,8}",
        ) {
            prop_assert!(s.len() <= 12);
            prop_assert!(!t.is_empty() && t.len() <= 8);
            prop_assert!(t.chars().all(|c| c != ',' && c != '"' && !c.is_whitespace()));
        }

        #[test]
        fn prop_map_applies(
            s in "[a-z]{1,4}".prop_map(|s| s.to_uppercase()),
        ) {
            prop_assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }
}
