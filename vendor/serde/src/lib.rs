//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of serde that the SECRETA workspace actually
//! uses: `#[derive(Serialize, Deserialize)]` (via the sibling
//! `serde_derive` stub), the `#[serde(skip)]` / `#[serde(default)]` /
//! `#[serde(default = "path")]` field attributes, and enough trait
//! machinery for `serde_json`-style round-trips.
//!
//! Instead of serde's visitor architecture, everything funnels through
//! an owned JSON-like [`Value`]: `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one. The derive macro follows
//! serde's default data conventions (externally tagged enums, newtype
//! transparency, field-name objects) so JSON written by hand for the
//! real serde parses identically here.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::BuildHasher;
use std::path::PathBuf;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order preserved for stable output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Array elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// String content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content coerced to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric content as `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric content as `i64`, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            Value::F64(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| obj_get(o, key))
    }
}

/// First entry named `key` in an object body.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Free-form error.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` while reading {ty}"))
    }

    /// The value had the wrong shape.
    pub fn mismatch(expected: &str, got: &Value) -> DeError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        };
        DeError(format!("expected {expected}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render into the [`Value`] data model.
pub trait Serialize {
    /// The value representation of `self`.
    fn ser(&self) -> Value;
}

/// Rebuild from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of `v`.
    fn de(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

// Identity impls so already-parsed values can be embedded in derived
// structs (e.g. a stored manifest carrying an opaque config payload).
impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::mismatch("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::mismatch("an integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn ser(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("a number", v))
    }
}
impl Serialize for f32 {
    fn ser(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok(f64::de(v)? as f32)
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::mismatch("a boolean", v))
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::mismatch("a string", v))
    }
}
impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::mismatch("a string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a single character")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(t) => t.ser(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::de(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::mismatch("an array", v))?
            .iter()
            .map(T::de)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::de(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Value {
                Value::Arr(vec![$(self.$idx.ser()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn de(v: &Value) -> Result<Self, DeError> {
                let a = v.as_arr().ok_or_else(|| DeError::mismatch("a tuple array", v))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected a tuple of {expected} elements, found {}", a.len()
                    )));
                }
                Ok(($($name::de(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}
impl Deserialize for Duration {
    fn de(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| DeError::mismatch("a duration object", v))?;
        let secs = obj_get(obj, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::missing_field("Duration", "secs"))?;
        let nanos = obj_get(obj, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::missing_field("Duration", "nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for PathBuf {
    fn ser(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}
impl Deserialize for PathBuf {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok(PathBuf::from(String::de(v)?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.ser())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::mismatch("an object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
            .collect()
    }
}

impl<V: Serialize, S: BuildHasher> Serialize for HashMap<String, V, S> {
    fn ser(&self) -> Value {
        // sorted for deterministic output
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.ser())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}
impl<V: Deserialize, S: BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn de(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::mismatch("an object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::de(&42u32.ser()), Ok(42));
        assert_eq!(i64::de(&(-7i64).ser()), Ok(-7));
        assert_eq!(bool::de(&true.ser()), Ok(true));
        assert_eq!(String::de(&"hi".to_owned().ser()), Ok("hi".to_owned()));
        assert_eq!(Vec::<u32>::de(&vec![1u32, 2, 3].ser()), Ok(vec![1, 2, 3]));
        assert_eq!(Option::<u32>::de(&Value::Null), Ok(None));
        let d = Duration::new(3, 17);
        assert_eq!(Duration::de(&d.ser()), Ok(d));
    }

    #[test]
    fn mismatches_reported() {
        assert!(u32::de(&Value::Str("x".into())).is_err());
        assert!(bool::de(&Value::U64(1)).is_err());
        assert!(Vec::<u32>::de(&Value::Bool(false)).is_err());
    }
}
