//! Offline stand-in for `serde_json`.
//!
//! A complete JSON parser and printer over the `Value` data model of
//! the sibling `serde` stub. Covers the workspace's usage surface:
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`to_writer`]
//! and an [`Error`] type whose `Display` carries position information.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Parse or deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(msg: impl Into<String>, line: usize, column: usize) -> Error {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    fn data(e: DeError) -> Error {
        Error {
            msg: e.0,
            line: 0,
            column: 0,
        }
    }

    /// 1-based line of the failure (0 when not positional).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the failure (0 when not positional).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Deserialize `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::de(&value).map_err(Error::data)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error {
        msg: e.to_string(),
        line: 0,
        column: 0,
    })
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::parse(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(elems));
        }
        loop {
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(elems));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pair
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    self.pos += 6;
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------- printer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // keep integral floats readable ("3.0")
            out.push_str(&format!("{n:.1}"));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/inf; serde_json emits null
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(e, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let src = r#"{"a": [1, -2, 3.5], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        let printed = {
            let mut s = String::new();
            write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&printed).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_value("{\n  \"a\": }").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }
}
