//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group / `bench_function` / `bench_with_input` /
//! `iter` surface used by `crates/bench`, backed by a plain
//! wall-clock timer: a warmup pass, then `sample_size` timed samples,
//! reporting min / median / max to stdout. No statistics engine, no
//! HTML reports — enough to run `cargo bench` offline and compare
//! numbers between revisions.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once per sample after one warmup execution.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    println!(
        "{name:<48} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
        min,
        median,
        max,
        samples.len()
    );
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut b.samples);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut b.samples);
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("id", 7), &41usize, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
