//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] (a deterministic SplitMix64 generator),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`],
//! and [`seq::SliceRandom`]. Streams differ from upstream rand — all
//! callers seed explicitly and only require determinism, not
//! bit-compatibility.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // full-domain u64 range
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Iterator over elements picked by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        picked: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.picked.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.picked.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random selection from slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // partial Fisher-Yates over an index vector
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            SliceChooseIter {
                slice: self,
                picked: idx.into_iter(),
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_multiple_distinct() {
        let xs: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "no duplicates");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut xs: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(4);
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
