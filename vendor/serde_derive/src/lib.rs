//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the `Value`-based facade in the sibling `serde` stub,
//! parsing the item's token stream by hand (no `syn`/`quote` in this
//! offline environment). Supported shapes — the ones the workspace
//! uses — are non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants), with the `#[serde(skip)]`,
//! `#[serde(default)]` and `#[serde(default = "path")]` field
//! attributes. Enums follow serde's externally-tagged convention so
//! hand-written JSON for the real serde parses identically.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level `#[serde(...)]` switches.
#[derive(Clone, Copy, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Clone)]
struct FieldAttrInfo {
    attrs: FieldAttrs,
    default_path: Option<String>,
}

#[derive(Clone)]
struct NamedField {
    name: String,
    info: FieldAttrInfo,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume leading attributes, extracting `#[serde(...)]` info.
    fn parse_attrs(&mut self) -> Result<FieldAttrInfo, String> {
        let mut info = FieldAttrInfo {
            attrs: FieldAttrs::default(),
            default_path: None,
        };
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected attribute body, found {other:?}")),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => continue,
            };
            let args: Vec<TokenTree> = args.into_iter().collect();
            let mut i = 0;
            while i < args.len() {
                match &args[i] {
                    TokenTree::Ident(id) => match id.to_string().as_str() {
                        "skip" | "skip_serializing" | "skip_deserializing" => {
                            info.attrs.skip = true;
                            i += 1;
                        }
                        "default" => {
                            info.attrs.default = true;
                            i += 1;
                            if matches!(args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                            {
                                i += 1;
                                match args.get(i) {
                                    Some(TokenTree::Literal(l)) => {
                                        let s = l.to_string();
                                        info.default_path = Some(s.trim_matches('"').to_owned());
                                        i += 1;
                                    }
                                    other => {
                                        return Err(format!(
                                        "expected path literal after `default =`, found {other:?}"
                                    ))
                                    }
                                }
                            }
                        }
                        other => {
                            return Err(format!(
                                "unsupported serde attribute `{other}` (stub derive)"
                            ))
                        }
                    },
                    TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                    other => return Err(format!("unexpected token in serde attribute: {other:?}")),
                }
            }
        }
        Ok(info)
    }

    /// Consume an optional visibility qualifier.
    fn parse_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skip a type, stopping at a top-level `,` (angle-bracket aware).
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let info = c.parse_attrs()?;
        c.parse_vis();
        let name = c.expect_ident()?;
        if !c.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        fields.push(NamedField { name, info });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        // per-field attrs and visibility, then the type
        let _ = c.parse_attrs();
        c.parse_vis();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.parse_attrs()?;
    c.parse_vis();
    let kw = c.expect_ident()?;
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    let name = c.expect_ident()?;
    if c.at_punct('<') {
        return Err(format!(
            "stub serde derive does not support generics (type `{name}`)"
        ));
    }
    if is_enum {
        let body = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        let mut vc = Cursor::new(body);
        let mut variants = Vec::new();
        while vc.peek().is_some() {
            vc.parse_attrs()?;
            let vname = vc.expect_ident()?;
            let shape = match vc.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    vc.next();
                    Shape::Tuple(n)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream())?;
                    vc.next();
                    Shape::Named(fields)
                }
                _ => Shape::Unit,
            };
            if vc.at_punct(',') {
                vc.next();
            }
            variants.push(Variant { name: vname, shape });
        }
        Ok(Item::Enum { name, variants })
    } else {
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("expected struct body, found {other:?}")),
        };
        Ok(Item::Struct { name, shape })
    }
}

// ------------------------------------------------------------- generation

fn ser_named_body(fields: &[NamedField], access: &dyn Fn(&str) -> String) -> String {
    let mut s = String::from(
        "{ let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.info.attrs.skip {
            continue;
        }
        s.push_str(&format!(
            "__o.push((\"{n}\".to_string(), ::serde::Serialize::ser({a})));\n",
            n = f.name,
            a = access(&f.name)
        ));
    }
    s.push_str("::serde::Value::Obj(__o) }");
    s
}

fn de_named_body(ty: &str, ctor: &str, fields: &[NamedField], obj_var: &str) -> String {
    let mut s = format!("{ctor} {{\n");
    for f in fields {
        let missing = if f.info.attrs.skip || f.info.attrs.default {
            match &f.info.default_path {
                Some(p) => format!("{p}()"),
                None => "::std::default::Default::default()".to_owned(),
            }
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{ty}\", \"{n}\"))",
                n = f.name
            )
        };
        if f.info.attrs.skip {
            s.push_str(&format!("{n}: {missing},\n", n = f.name));
        } else {
            s.push_str(&format!(
                "{n}: match ::serde::obj_get({obj_var}, \"{n}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::de(__x)?,\n\
                 ::std::option::Option::None => {missing},\n}},\n",
                n = f.name
            ));
        }
    }
    s.push('}');
    s
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_owned(),
                Shape::Tuple(1) => "::serde::Serialize::ser(&self.0)".to_owned(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => ser_named_body(fields, &|f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::ser(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Arr(vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let body = ser_named_body(fields, &|f| f.to_owned());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => ::serde::Value::Obj(vec![(\"{vn}\"\
                             .to_string(), {body})]),\n",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}(::serde::Deserialize::de(__v)?))")
                }
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::de(&__a[{i}])?"))
                        .collect();
                    format!(
                        "let __a = __v.as_arr().ok_or_else(|| \
                         ::serde::DeError::mismatch(\"an array for `{name}`\", __v))?;\n\
                         if __a.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\"expected {n} elements for `{name}`, \
                         found {{}}\", __a.len()))); }}\n\
                         ::std::result::Result::Ok({name}({e}))",
                        e = elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let ctor = de_named_body(name, name, fields, "__obj");
                    format!(
                        "let __obj = __v.as_obj().ok_or_else(|| \
                         ::serde::DeError::mismatch(\"an object for `{name}`\", __v))?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
                 {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tag_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        tag_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => tag_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::de(__payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::de(&__a[{i}])?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = __payload.as_arr().ok_or_else(|| \
                             ::serde::DeError::mismatch(\"an array for `{name}::{vn}`\", \
                             __payload))?;\n\
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong arity for `{name}::{vn}`\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({e}))\n}}\n",
                            e = elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = de_named_body(name, &format!("{name}::{vn}"), fields, "__o");
                        tag_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __o = __payload.as_obj().ok_or_else(|| \
                             ::serde::DeError::mismatch(\"an object for `{name}::{vn}`\", \
                             __payload))?;\n\
                             ::std::result::Result::Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}}\n\
                 let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::DeError::mismatch(\"a variant of `{name}`\", __v))?;\n\
                 if __obj.len() != 1 {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"expected a single-key variant object for `{name}`\")); }}\n\
                 let (__tag, __payload) = (&__obj[0].0, &__obj[0].1);\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n{tag_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}}\n}}\n"
            )
        }
    }
}
