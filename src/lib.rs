//! Umbrella crate for **SECRETA-rs** — re-exports the full public API.
//!
//! See [`secreta_core`] for the benchmarking framework and the
//! workspace README for an architecture overview.

pub use secreta_core as core;
pub use secreta_gen as gen;
pub use secreta_plot as plot;
