#!/bin/sh
# Regenerate the committed perf-gate baseline (benches/baseline.json).
#
# Run this after an INTENTIONAL performance change, from an otherwise
# idle machine, and commit the result together with the change. The
# parameters below must stay in lockstep with the perf-gate job in
# .github/workflows/ci.yml — `secreta bench --all --baseline` refuses
# to compare reports measured under different parameters.
set -eu
cd "$(dirname "$0")/.."

if [ -n "${SECRETA_FAULTS:-}" ]; then
    echo "error: unset SECRETA_FAULTS before regenerating the baseline" >&2
    exit 2
fi
if [ -n "${SECRETA_BENCH_HANDICAP:-}" ]; then
    echo "error: unset SECRETA_BENCH_HANDICAP before regenerating the baseline" >&2
    exit 2
fi

cargo build --release -p secreta-cli
./target/release/secreta bench --all --rows 800 --reps 3 --threads 2 \
    --out benches/baseline.json
echo "wrote benches/baseline.json — commit it with the change that moved the numbers"
