#!/usr/bin/env sh
# Verify that every relative markdown link in the repo's documentation
# points at a file that exists. Offline, zero dependencies beyond
# POSIX sh + grep/sed. Usage: tools/check_doc_links.sh [repo-root]
set -eu

root="${1:-.}"
fail=0

files=$(find "$root" -maxdepth 1 -name '*.md'; find "$root/docs" -name '*.md' 2>/dev/null || true)

for f in $files; do
    dir=$(dirname "$f")
    # extract inline link targets: [text](target)
    targets=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//' || true)
    for t in $targets; do
        case "$t" in
            http://*|https://*|mailto:*) continue ;;   # external: not checked (offline)
            '#'*) continue ;;                           # same-file anchor
        esac
        path=${t%%#*}                                   # drop cross-file anchors
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN LINK: $f -> $t" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "documentation link check failed" >&2
    exit 1
fi
echo "documentation links OK"
