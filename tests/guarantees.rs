//! Property-based guarantees: on randomized datasets, every algorithm
//! must uphold its privacy model and data truthfulness — the core
//! invariants a benchmarking system for anonymization relies on.

use proptest::prelude::*;
use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::{anonymizer, SessionContext};
use secreta::gen::DatasetSpec;

fn small_rt_table_strategy() -> impl Strategy<Value = (usize, u64, usize)> {
    // (rows, seed, k)
    (20usize..80, 0u64..1000, 2usize..6)
}

fn ctx_for(rows: usize, seed: u64) -> SessionContext {
    let mut spec = DatasetSpec::adult_like(rows, seed);
    // small item universe so k^m is feasible on few rows
    spec.n_items = 12;
    spec.tx_len = (1, 4);
    SessionContext::auto(spec.generate(), 3).expect("hierarchies")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn relational_algorithms_always_k_anonymous(
        (rows, seed, k) in small_rt_table_strategy(),
        algo_pick in 0usize..4,
    ) {
        let ctx = ctx_for(rows, seed);
        let algo = RelAlgo::all()[algo_pick];
        let out = anonymizer::run(&ctx, &MethodSpec::Relational { algo, k }, seed)
            .expect("k <= rows so feasible");
        prop_assert!(out.indicators.verified, "{algo:?} k={k} rows={rows}");
        prop_assert!(out.anon.is_truthful(
            &ctx.table,
            |a| ctx.hierarchy_of(a).cloned(),
            ctx.item_hierarchy.as_ref()
        ));
        // every class at least k
        prop_assert!(out.indicators.avg_class_size >= k as f64 - 1e-9);
    }

    #[test]
    fn transaction_algorithms_always_protect(
        (rows, seed, k) in small_rt_table_strategy(),
        algo_pick in 0usize..5,
        m in 1usize..3,
    ) {
        let ctx = ctx_for(rows, seed);
        let algo = TxAlgo::all()[algo_pick];
        let result = anonymizer::run(
            &ctx,
            &MethodSpec::Transaction { algo, k, m },
            seed,
        );
        match result {
            Ok(out) => {
                prop_assert!(out.indicators.verified, "{algo:?} k={k} m={m}");
                prop_assert!(out.anon.is_truthful(
                    &ctx.table,
                    |a| ctx.hierarchy_of(a).cloned(),
                    ctx.item_hierarchy.as_ref()
                ));
            }
            // infeasible instances must be *reported*, never silently
            // mis-anonymized
            Err(anonymizer::RunError::Tx(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn rt_pipeline_always_k_km(
        (rows, seed, k) in small_rt_table_strategy(),
        rel_pick in 0usize..4,
        tx_pick in 0usize..5,
        bound_pick in 0usize..3,
    ) {
        let ctx = ctx_for(rows, seed);
        let spec = MethodSpec::Rt {
            rel: RelAlgo::all()[rel_pick],
            tx: TxAlgo::all()[tx_pick],
            bounding: Bounding::all()[bound_pick],
            k,
            m: 2,
            delta: 2,
        };
        match anonymizer::run(&ctx, &spec, seed) {
            Ok(out) => {
                prop_assert!(out.indicators.verified, "{}", spec.label());
                prop_assert!(out.indicators.gcp <= 1.0 + 1e-9);
                prop_assert!(out.indicators.tx_gcp <= 1.0 + 1e-9);
            }
            Err(anonymizer::RunError::Rt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn indicators_stay_in_bounds(
        (rows, seed, k) in small_rt_table_strategy(),
    ) {
        let ctx = ctx_for(rows, seed);
        let spec = MethodSpec::Relational { algo: RelAlgo::Cluster, k };
        let out = anonymizer::run(&ctx, &spec, seed).expect("feasible");
        let i = &out.indicators;
        prop_assert!((0.0..=1.0).contains(&i.gcp));
        prop_assert!((0.0..=1.0).contains(&i.ul));
        prop_assert!(i.are >= 0.0);
        prop_assert!(i.avg_class_size >= 1.0);
        prop_assert!(i.discernibility >= rows as u64);
        prop_assert!(i.discernibility <= (rows as u64) * (rows as u64));
    }
}
