//! File-format integration: hierarchies, policies, workloads and
//! saved comparison configurations all roundtrip against a real
//! dataset — the Configuration/Queries Editor load paths.

use secreta::core::config::{MethodSpec, RelAlgo};
use secreta::core::hierarchy::io as hio;
use secreta::core::metrics::query as q;
use secreta::core::policy::{
    generate_privacy, generate_utility, io as pio, PrivacyStrategy, UtilityStrategy,
};
use secreta::core::{Configuration, SessionContext, Sweep, VaryingParam};
use secreta::gen::{DatasetSpec, WorkloadSpec};

#[test]
fn hierarchy_files_roundtrip_for_every_attribute() {
    let table = DatasetSpec::adult_like(60, 9).generate();
    let ctx = SessionContext::auto(table, 4).unwrap();
    for (pos, &attr) in ctx.qi_attrs.iter().enumerate() {
        let h = &ctx.hierarchies[pos];
        let mut buf = Vec::new();
        hio::write_hierarchy(h, &mut buf, ';').unwrap();
        let back = hio::read_hierarchy(buf.as_slice(), ctx.table.pool(attr), ';').unwrap();
        assert_eq!(back.n_nodes(), h.n_nodes(), "attr {attr}");
        assert_eq!(back.height(), h.height());
        for v in 0..h.n_leaves() as u32 {
            assert_eq!(back.path_to_root(v), h.path_to_root(v));
        }
    }
    // item hierarchy too
    let ih = ctx.item_hierarchy.as_ref().unwrap();
    let mut buf = Vec::new();
    hio::write_hierarchy(ih, &mut buf, ';').unwrap();
    let back = hio::read_hierarchy(buf.as_slice(), ctx.table.item_pool().unwrap(), ';').unwrap();
    assert_eq!(back.n_nodes(), ih.n_nodes());
}

#[test]
fn generated_policies_roundtrip() {
    let table = DatasetSpec::adult_like(100, 10).generate();
    let p = generate_privacy(
        &table,
        &PrivacyStrategy::RandomItemsets {
            size: 2,
            count: 20,
            seed: 3,
        },
    );
    let mut buf = Vec::new();
    pio::write_privacy(&p, &table, &mut buf).unwrap();
    let p2 = pio::read_privacy(buf.as_slice(), &table).unwrap();
    assert_eq!(p, p2);

    let u = generate_utility(&table, &UtilityStrategy::FrequencyBands { bands: 4 }, None);
    let mut buf = Vec::new();
    pio::write_utility(&u, &table, &mut buf).unwrap();
    let u2 = pio::read_utility(buf.as_slice(), &table).unwrap();
    assert_eq!(u, u2);
}

#[test]
fn generated_workloads_roundtrip_and_answer_identically() {
    let table = DatasetSpec::adult_like(150, 11).generate();
    let w = WorkloadSpec {
        n_queries: 40,
        ..Default::default()
    }
    .generate(&table);
    let mut buf = Vec::new();
    q::write_workload(&w, &table, &mut buf).unwrap();
    let w2 = q::read_workload(buf.as_slice(), &table).unwrap();
    assert_eq!(w, w2);
    assert_eq!(w.counts(&table), w2.counts(&table));
}

#[test]
fn comparison_configurations_roundtrip_as_json() {
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 10,
        step: 2,
    };
    let configs = vec![
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 0,
            },
            sweep,
            1,
        ),
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Incognito,
                k: 0,
            },
            sweep,
            1,
        ),
    ];
    let json = serde_json::to_string_pretty(&configs).unwrap();
    let back: Vec<Configuration> = serde_json::from_str(&json).unwrap();
    assert_eq!(configs, back);
}

#[test]
fn hierarchy_files_reject_foreign_domains() {
    let table_a = DatasetSpec::adult_like(20, 1).generate();
    let table_b = DatasetSpec::basket(20, 5, 2).generate();
    let ctx = SessionContext::auto(table_a, 4).unwrap();
    let mut buf = Vec::new();
    hio::write_hierarchy(&ctx.hierarchies[0], &mut buf, ';').unwrap();
    // reading the Age hierarchy against the basket's item pool fails
    let err = hio::read_hierarchy(buf.as_slice(), table_b.item_pool().unwrap(), ';');
    assert!(err.is_err());
}
