//! Chunked-ingest identity: the correctness spine of the out-of-core
//! data path. Streaming a dataset in fixed-size row chunks — whether
//! from CSV bytes or the synthetic generator — must be invisible:
//! the materialized table, and every anonymization output computed
//! from it, is byte-identical to the in-memory path at every chunk
//! size and thread count.

use proptest::prelude::*;
use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::data::chunk::read_chunked;
use secreta::core::data::{csv as dcsv, CsvOptions, MemoryBudget, RtTable};
use secreta::core::{anonymizer, export, SessionContext};
use secreta::gen::DatasetSpec;

/// Serialize a table to CSV bytes — the byte-level identity oracle.
fn csv_bytes(table: &RtTable, opts: &CsvOptions) -> Vec<u8> {
    let mut buf = Vec::new();
    dcsv::write_table(table, &mut buf, opts).unwrap();
    buf
}

/// Quote `field` the way the exporter does, so generated CSV exercises
/// the quoted-field state machine.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Render a field matrix to CSV text with the given line ending,
/// optionally omitting the final newline.
fn render_csv(rows: &[Vec<String>], eol: &str, trailing_newline: bool) -> String {
    let width = rows[0].len();
    let mut text = String::new();
    let header: Vec<String> = (0..width).map(|c| format!("C{c}")).collect();
    text.push_str(&header.join(","));
    text.push_str(eol);
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row.iter().map(|f| quote(f)).collect();
        text.push_str(&line.join(","));
        if i + 1 < rows.len() || trailing_newline {
            text.push_str(eol);
        }
    }
    text
}

/// Field values drawn to stress the parser: delimiters, quotes, bare
/// and escaped newlines, plain text, numbers, empties.
fn field_strategy() -> impl Strategy<Value = String> {
    (0usize..7, "[a-z]{0,6}").prop_map(|(variant, word)| match variant {
        0 => word,
        1 => "a,b".into(),
        2 => "say \"hi\"".into(),
        3 => "line1\nline2".into(),
        4 => "  padded  ".into(),
        5 => "42".into(),
        _ => String::new(),
    })
}

/// `(width, rows)` where each generated row carries the maximum
/// width; the test truncates rows to `width`.
fn matrix_strategy() -> impl Strategy<Value = (usize, Vec<Vec<String>>)> {
    (
        2usize..5,
        proptest::collection::vec(proptest::collection::vec(field_strategy(), 4..=4), 1..40),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every chunk size parses randomized CSV — quoted commas, escaped
    /// quotes, embedded newlines, CRLF endings, missing final newline —
    /// into exactly the table the in-memory reader builds, and both
    /// agree with the field matrix the text was rendered from.
    #[test]
    fn chunked_csv_reads_are_byte_identical(
        (width, wide_rows) in matrix_strategy(),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
    ) {
        let rows: Vec<Vec<String>> = wide_rows
            .into_iter()
            .map(|r| r.into_iter().take(width).collect())
            .collect();
        let eol = if crlf { "\r\n" } else { "\n" };
        let text = render_csv(&rows, eol, trailing_newline);
        let opts = CsvOptions::default();
        let reference = dcsv::read_table(text.as_bytes(), &opts).unwrap();

        // the parse oracle: values equal the rendered matrix after the
        // reader's normalizations (embedded CRLF → LF like physical
        // line endings; relational fields are trimmed, quoted or not)
        prop_assert_eq!(reference.n_rows(), rows.len());
        for (r, row) in rows.iter().enumerate() {
            for (c, field) in row.iter().enumerate() {
                let expected = field.replace("\r\n", "\n");
                prop_assert_eq!(reference.value_str(r, c), expected.trim());
            }
        }

        let reference_bytes = csv_bytes(&reference, &opts);
        for chunk_rows in [1usize, 64, 1024, usize::MAX] {
            let chunked = read_chunked(
                text.as_bytes(),
                &opts,
                chunk_rows,
                MemoryBudget::unlimited(),
            )
            .unwrap()
            .into_table()
            .unwrap();
            prop_assert_eq!(
                csv_bytes(&chunked, &opts),
                reference_bytes.clone(),
                "chunk_rows={}",
                chunk_rows
            );
        }
    }
}

fn every_method() -> Vec<MethodSpec> {
    let mut specs = Vec::new();
    for algo in RelAlgo::all() {
        specs.push(MethodSpec::Relational { algo, k: 4 });
    }
    for algo in TxAlgo::all() {
        specs.push(MethodSpec::Transaction { algo, k: 3, m: 2 });
    }
    for bounding in Bounding::all() {
        specs.push(MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding,
            k: 3,
            m: 2,
            delta: 2,
        });
    }
    specs.push(MethodSpec::Rho {
        rho: 0.5,
        sensitive: vec!["item_0000".into(), "item_0001".into()],
        max_antecedent: 2,
        generalize: false,
    });
    specs.push(MethodSpec::Rho {
        rho: 0.5,
        sensitive: vec!["item_0000".into(), "item_0001".into()],
        max_antecedent: 2,
        generalize: true,
    });
    specs
}

fn anonymized_bytes(ctx: &SessionContext, spec: &MethodSpec, seed: u64) -> Vec<u8> {
    let out = anonymizer::run(ctx, spec, seed).expect("feasible on this dataset");
    let mut buf = Vec::new();
    export::write_anonymized(ctx, &out.anon, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every algorithm produces byte-identical anonymized exports
    /// whether its input table arrived in memory or through chunked
    /// ingest, at every chunk size {64, 1024, whole-table} and thread
    /// count {1, 2, 8}.
    #[test]
    fn anonymization_is_identical_across_ingest_chunking_and_threads(
        rows in 60usize..120,
        seed in 0u64..500,
    ) {
        let mut spec = DatasetSpec::adult_like(rows, seed);
        spec.n_items = 12;
        spec.tx_len = (1, 4);

        let in_memory = spec.generate();
        let whole = in_memory.n_rows().max(1);
        let mut tables = Vec::new();
        for chunk_rows in [64usize, 1024, whole] {
            let t = spec
                .generate_chunked(chunk_rows, MemoryBudget::unlimited())
                .unwrap()
                .into_table()
                .unwrap();
            tables.push((chunk_rows, t));
        }

        // table-level identity at every chunk size
        let opts = CsvOptions::default();
        let reference_bytes = csv_bytes(&in_memory, &opts);
        for (chunk_rows, t) in &tables {
            prop_assert_eq!(
                csv_bytes(t, &opts),
                reference_bytes.clone(),
                "chunk_rows={}",
                chunk_rows
            );
        }

        // output-level identity: every algorithm, chunk-ingested vs
        // in-memory input, across thread counts
        let ctx_mem = SessionContext::auto(in_memory, 3).expect("hierarchies");
        let (_, chunked) = tables.swap_remove(0);
        let ctx_chunked = SessionContext::auto(chunked, 3).expect("hierarchies");
        let before = secreta::core::parallel::max_threads();
        for spec in every_method() {
            let baseline = anonymized_bytes(&ctx_mem, &spec, seed);
            for threads in [1usize, 2, 8] {
                secreta::core::parallel::set_threads(threads);
                prop_assert_eq!(
                    anonymized_bytes(&ctx_chunked, &spec, seed),
                    baseline.clone(),
                    "{} at {} threads",
                    spec.label(),
                    threads
                );
            }
            secreta::core::parallel::set_threads(before);
        }
    }
}
