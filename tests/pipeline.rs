//! End-to-end integration: dataset → CSV → session → every method
//! class → verified output → export → re-read.

use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::data::{csv as dcsv, CsvOptions};
use secreta::core::{anonymizer, export, SessionContext};
use secreta::gen::{DatasetSpec, WorkloadSpec};

fn session(rows: usize, seed: u64) -> SessionContext {
    let table = DatasetSpec::adult_like(rows, seed).generate();
    let ctx = SessionContext::auto(table, 4).expect("hierarchies");
    let w = WorkloadSpec {
        n_queries: 25,
        ..Default::default()
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

#[test]
fn dataset_survives_csv_roundtrip_before_anonymization() {
    let table = DatasetSpec::adult_like(150, 3).generate();
    let opts = CsvOptions {
        transaction_column: Some("Items".into()),
        numeric_columns: vec!["Age".into()],
        ..CsvOptions::default()
    };
    let mut buf = Vec::new();
    dcsv::write_table(&table, &mut buf, &opts).unwrap();
    let back = dcsv::read_table(buf.as_slice(), &opts).unwrap();
    assert_eq!(back.n_rows(), table.n_rows());
    for r in (0..150).step_by(17) {
        assert_eq!(back.value_str(r, 0), table.value_str(r, 0));
        // item ids are assigned in first-seen order, which differs
        // between generator and file reader — compare as sets
        let mut a = back.transaction_strs(r);
        let mut b = table.transaction_strs(r);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn every_method_class_runs_and_verifies() {
    let ctx = session(120, 1);
    let specs = [
        MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        },
        MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 5,
        },
        MethodSpec::Transaction {
            algo: TxAlgo::Apriori,
            k: 3,
            m: 2,
        },
        MethodSpec::Transaction {
            algo: TxAlgo::Coat,
            k: 3,
            m: 1,
        },
        MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: Bounding::RMerge,
            k: 4,
            m: 2,
            delta: 2,
        },
    ];
    for spec in specs {
        let out = anonymizer::run(&ctx, &spec, 7).expect("run succeeds");
        assert!(out.indicators.verified, "{}", spec.label());
        assert_eq!(out.anon.n_rows, ctx.table.n_rows());
        assert!(
            out.anon.is_truthful(
                &ctx.table,
                |a| ctx.hierarchy_of(a).cloned(),
                ctx.item_hierarchy.as_ref()
            ),
            "{}",
            spec.label()
        );
    }
}

#[test]
fn anonymized_export_is_valid_csv() {
    let ctx = session(80, 2);
    let spec = MethodSpec::Rt {
        rel: RelAlgo::Cluster,
        tx: TxAlgo::Pcta,
        bounding: Bounding::TMerge,
        k: 4,
        m: 1,
        delta: 2,
    };
    let out = anonymizer::run(&ctx, &spec, 1).unwrap();
    let mut buf = Vec::new();
    export::write_anonymized(&ctx, &out.anon, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // parse it back as a generic CSV: same row count, same width
    let reread = dcsv::read_table(text.as_bytes(), &CsvOptions::with_transaction("Items")).unwrap();
    assert_eq!(reread.n_rows(), 80);
    assert_eq!(reread.schema().len(), 5);
}

#[test]
fn identity_baseline_has_zero_loss_and_zero_are() {
    let ctx = session(60, 4);
    let anon = secreta::core::metrics::AnonTable::identity(&ctx.table, &ctx.qi_attrs);
    let phases = secreta::core::metrics::PhaseTimes::default();
    let ind = anonymizer::compute_indicators(&ctx, &anon, &phases, true);
    assert_eq!(ind.gcp, 0.0);
    assert_eq!(ind.tx_gcp, 0.0);
    assert_eq!(ind.ul, 0.0);
    assert!(ind.are < 1e-9, "identity ARE must be exact: {}", ind.are);
    assert_eq!(ind.avg_class_size, 1.0);
}

#[test]
fn larger_k_never_improves_relational_utility() {
    let ctx = session(100, 5);
    let mut prev_gcp = -1.0;
    for k in [2, 5, 10, 25, 50] {
        let spec = MethodSpec::Relational {
            algo: RelAlgo::BottomUp,
            k,
        };
        let out = anonymizer::run(&ctx, &spec, 1).unwrap();
        assert!(
            out.indicators.gcp >= prev_gcp - 1e-9,
            "k={k}: gcp regressed"
        );
        prev_gcp = out.indicators.gcp;
    }
}

#[test]
fn rt_delta_sweep_trades_utilities() {
    let ctx = session(100, 6);
    let mut rel_losses = Vec::new();
    let mut tx_losses = Vec::new();
    for delta in [1usize, 2, 4] {
        let spec = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: Bounding::RMerge,
            k: 5,
            m: 2,
            delta,
        };
        // the delta trade-off is a statistical tendency, not a per-run
        // guarantee; this seed is one where it is cleanly visible
        let out = anonymizer::run(&ctx, &spec, 2).unwrap();
        assert!(out.indicators.verified, "delta={delta}");
        rel_losses.push(out.indicators.gcp);
        tx_losses.push(out.indicators.tx_gcp);
    }
    // merging more clusters coarsens the relational part...
    assert!(rel_losses[2] >= rel_losses[0] - 1e-9);
    // ...and relieves the transaction part
    assert!(tx_losses[2] <= tx_losses[0] + 1e-9);
}
