//! The full data-publisher workflow of the paper's demonstration plan,
//! driven through files — the exact sequence a SECRETA user walks
//! through the GUI, scripted:
//!
//! 1. load a ready-to-use RT-dataset (here: generated, then saved),
//! 2. *edit* it in the Dataset Editor (rename an attribute, fix a
//!    record),
//! 3. derive and save a hierarchy, a query workload and policies
//!    (Configuration/Queries Editors),
//! 4. bundle everything into a saved session,
//! 5. run the Evaluation mode against the session and export the
//!    anonymized dataset.
//!
//! ```sh
//! cargo run --example publisher_workflow
//! ```

use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::data::csv::{write_table_path, CsvOptions};
use secreta::core::data::edit::{EditCommand, EditSession};
use secreta::core::hierarchy::io::write_hierarchy_path;
use secreta::core::metrics::query::write_workload;
use secreta::core::policy::{generate_privacy, io::write_privacy, PrivacyStrategy};
use secreta::core::{anonymizer, export, SessionSpec};
use secreta::gen::{DatasetSpec, WorkloadSpec};
use std::path::PathBuf;

fn main() {
    let dir = PathBuf::from("results").join("publisher_workflow");
    std::fs::create_dir_all(&dir).expect("create working dir");

    // 1. the "ready-to-use RT-dataset"
    let mut table = DatasetSpec::adult_like(400, 77).generate();
    println!("loaded dataset: {} records", table.n_rows());

    // 2. Dataset Editor: rename an attribute and correct a record
    let mut editor = EditSession::new();
    editor
        .apply(
            &mut table,
            &EditCommand::RenameAttribute {
                attr: 1,
                name: "Degree".into(),
            },
        )
        .expect("rename");
    editor
        .apply(
            &mut table,
            &EditCommand::SetValue {
                row: 0,
                attr: 0,
                value: "44".into(),
            },
        )
        .expect("fix record");
    println!("edited dataset: {} commands applied", editor.applied());
    let data_path = dir.join("data.csv");
    let opts = CsvOptions {
        transaction_column: Some("Items".into()),
        ..CsvOptions::default()
    };
    write_table_path(&table, &data_path, &opts).expect("save dataset");

    // 3. Configuration & Queries Editors: derive artifacts and save them
    let ctx = secreta::core::SessionContext::auto(table, 4).expect("hierarchies");
    write_hierarchy_path(&ctx.hierarchies[0], dir.join("age.hier"), ';').expect("hierarchy");
    let workload = WorkloadSpec {
        n_queries: 40,
        ..Default::default()
    }
    .generate(&ctx.table);
    let mut f = std::fs::File::create(dir.join("queries.txt")).expect("workload file");
    write_workload(&workload, &ctx.table, &mut f).expect("workload");
    let privacy = generate_privacy(
        &ctx.table,
        &PrivacyStrategy::RareItems { max_support: 0.03 },
    );
    let mut f = std::fs::File::create(dir.join("privacy.txt")).expect("policy file");
    write_privacy(&privacy, &ctx.table, &mut f).expect("policy");
    println!(
        "saved artifacts: age.hier, queries.txt ({} queries), privacy.txt ({} constraints)",
        workload.len(),
        privacy.len()
    );

    // 4. a saved session bundling everything
    let mut spec = SessionSpec::new("data.csv");
    spec.transaction_column = Some("Items".into());
    spec.hierarchy_files
        .insert("Age".into(), PathBuf::from("age.hier"));
    spec.workload_file = Some(PathBuf::from("queries.txt"));
    spec.privacy_file = Some(PathBuf::from("privacy.txt"));
    std::fs::write(dir.join("session.json"), spec.to_json()).expect("session file");
    println!("session saved to {}", dir.join("session.json").display());

    // 5. Evaluation mode against the reloaded session
    let ctx = spec.load(&dir).expect("session loads");
    let method = MethodSpec::Rt {
        rel: RelAlgo::Cluster,
        tx: TxAlgo::Coat,
        bounding: Bounding::RtMerge,
        k: 8,
        m: 1,
        delta: 3,
    };
    let out = anonymizer::run(&ctx, &method, 1).expect("anonymization");
    println!(
        "{}: ARE={:.3} GCP={:.3} txGCP={:.3} verified={}",
        method.label(),
        out.indicators.are,
        out.indicators.gcp,
        out.indicators.tx_gcp,
        out.indicators.verified
    );

    let anon_path = dir.join("anonymized.csv");
    let mut f = std::fs::File::create(&anon_path).expect("output file");
    export::write_anonymized(&ctx, &out.anon, &mut f).expect("export");
    println!("anonymized dataset exported to {}", anon_path.display());
}
