//! Quickstart: anonymize an RT-dataset and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Generates a small census+basket RT-dataset, anonymizes it with the
//! combination the paper demonstrates (a relational clustering
//! algorithm + a transaction algorithm under a bounding method), and
//! prints the utility indicators and per-phase runtimes SECRETA's
//! Evaluation mode reports.

use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::{anonymizer, export, SessionContext};
use secreta::gen::{DatasetSpec, WorkloadSpec};

fn main() {
    // 1. a dataset (in real use: secreta_data::csv::read_table_path)
    let table = DatasetSpec::adult_like(500, 42).generate();
    println!(
        "dataset: {} records, {} relational attributes, {} items",
        table.n_rows(),
        table.schema().relational_indices().len(),
        table.item_universe()
    );

    // 2. a session: auto-derived hierarchies + a COUNT-query workload
    let ctx = SessionContext::auto(table, 4).expect("hierarchies build");
    let workload = WorkloadSpec {
        n_queries: 50,
        ..Default::default()
    }
    .generate(&ctx.table);
    let ctx = ctx.with_workload(workload);

    // 3. configure: Cluster for the relational part, Apriori (AA) for
    //    the transaction part, combined with the RMERGE bounding method
    let spec = MethodSpec::Rt {
        rel: RelAlgo::Cluster,
        tx: TxAlgo::Apriori,
        bounding: Bounding::RMerge,
        k: 10,
        m: 2,
        delta: 3,
    };
    println!("method:  {}", spec.label());

    // 4. run and report
    let out = anonymizer::run(&ctx, &spec, 1).expect("anonymization succeeds");
    let ind = &out.indicators;
    println!("GCP (relational loss)     {:.4}", ind.gcp);
    println!("tx-GCP (transaction loss) {:.4}", ind.tx_gcp);
    println!("ARE over 50 queries       {:.4}", ind.are);
    println!("average class size        {:.2}", ind.avg_class_size);
    println!("runtime                   {:.1} ms", ind.runtime_ms);
    println!("(k,k^m) verified          {}", ind.verified);
    println!("\nphases:");
    for (name, d) in &out.phases.phases {
        println!("  {:<32} {:>9.2} ms", name, d.as_secs_f64() * 1e3);
    }

    // 5. export the anonymized dataset like the Data Export Module
    let mut csv = Vec::new();
    export::write_anonymized(&ctx, &out.anon, &mut csv).expect("export");
    let text = String::from_utf8(csv).expect("utf8");
    println!("\nfirst anonymized records:");
    for line in text.lines().take(4) {
        println!("  {line}");
    }
}
