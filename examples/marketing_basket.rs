//! The paper's marketing motivation: "several marketing studies seek
//! to find product combinations that appeal to customers with specific
//! demographic profiles".
//!
//! ```sh
//! cargo run --example marketing_basket
//! ```
//!
//! A retailer wants to publish demographics + purchase transactions.
//! Which algorithm combination keeps COUNT queries over
//! (demographic, product) predicates accurate? This example uses the
//! Comparison mode to pit three RT combinations against each other
//! over varying `k` and renders the comparison chart in the terminal —
//! exactly the workflow of the paper's Figure 4 screen.

use secreta::core::config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
use secreta::core::{compare, export, Configuration, SessionContext, Sweep, VaryingParam};
use secreta::gen::{DatasetSpec, WorkloadSpec};

fn main() {
    // correlated demographics/purchases make the scenario realistic:
    // different age groups prefer different products
    let mut spec = DatasetSpec::adult_like(600, 7);
    spec.correlation = 0.6;
    let table = spec.generate();

    let ctx = SessionContext::auto(table, 4).expect("hierarchies build");
    // marketing queries: one demographic predicate + one product
    let workload = WorkloadSpec {
        n_queries: 60,
        rel_atoms: 1,
        values_per_atom: 4,
        items_per_query: 1,
        seed: 99,
    }
    .generate(&ctx.table);
    let ctx = ctx.with_workload(workload);

    let sweep = Sweep {
        param: VaryingParam::K,
        start: 5,
        end: 25,
        step: 10,
    };
    let rt = |rel, tx, bounding| MethodSpec::Rt {
        rel,
        tx,
        bounding,
        k: 0, // varied
        m: 2,
        delta: 2,
    };
    let configurations = vec![
        Configuration::new(
            rt(RelAlgo::Cluster, TxAlgo::Apriori, Bounding::RMerge),
            sweep,
            1,
        ),
        Configuration::new(
            rt(RelAlgo::Cluster, TxAlgo::Coat, Bounding::TMerge),
            sweep,
            1,
        ),
        Configuration::new(
            rt(RelAlgo::Incognito, TxAlgo::Apriori, Bounding::RtMerge),
            sweep,
            1,
        ),
    ];

    println!(
        "comparing {} configurations over k = 5..25\n",
        configurations.len()
    );
    let result = compare(&ctx, &configurations, 4);

    for (label, pts) in result.labels.iter().zip(&result.points) {
        println!("== {label}");
        for (k, r) in pts {
            match r {
                Ok(p) => println!(
                    "   k={k:<3} ARE={:.3} GCP={:.3} runtime={:.0}ms verified={}",
                    p.indicators.are,
                    p.indicators.gcp,
                    p.indicators.runtime_ms,
                    p.indicators.verified
                ),
                Err(e) => println!("   k={k}: {e}"),
            }
        }
    }

    let chart = result.chart("ARE of marketing queries vs k", "ARE", |i| i.are);
    println!("\n{}", export::terminal_xy(&chart));
    let rt_chart = result.chart("runtime vs k", "ms", |i| i.runtime_ms);
    println!("{}", export::terminal_xy(&rt_chart));
}
