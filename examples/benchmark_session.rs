//! A full programmatic benchmark session with file export.
//!
//! ```sh
//! cargo run --example benchmark_session
//! ```
//!
//! Uses the Comparison mode exactly as a benchmark script would:
//! builds a dataset, sweeps all four relational algorithms over `k`,
//! and writes the comparison charts (SVG + CSV) into
//! `results/benchmark_session/` via the Data Export Module.

use secreta::core::config::{MethodSpec, RelAlgo};
use secreta::core::{compare, export, Configuration, SessionContext, Sweep, VaryingParam};
use secreta::gen::{DatasetSpec, WorkloadSpec};

fn main() {
    let table = DatasetSpec::census(400, 21).generate();
    let ctx = SessionContext::auto(table, 4).expect("hierarchies build");
    let workload = WorkloadSpec {
        n_queries: 40,
        rel_atoms: 2,
        values_per_atom: 3,
        items_per_query: 0,
        seed: 5,
    }
    .generate(&ctx.table);
    let ctx = ctx.with_workload(workload);

    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 26,
        step: 8,
    };
    let configurations: Vec<Configuration> = RelAlgo::all()
        .into_iter()
        .map(|algo| Configuration::new(MethodSpec::Relational { algo, k: 0 }, sweep, 11))
        .collect();

    println!(
        "benchmarking {} relational algorithms over k = 2..26 on {} threads",
        configurations.len(),
        4
    );
    let result = compare(&ctx, &configurations, 4);

    for (label, pts) in result.labels.iter().zip(&result.points) {
        print!("{label:<28}");
        for (_, r) in pts {
            match r {
                Ok(p) => print!(" ARE={:.3}", p.indicators.are),
                Err(_) => print!(" ARE=err "),
            }
        }
        println!();
    }

    let dir = std::path::Path::new("results").join("benchmark_session");
    std::fs::create_dir_all(&dir).expect("create results dir");
    for (name, ylabel, pick) in [
        ("are", "ARE", 0usize),
        ("gcp", "GCP", 1),
        ("runtime", "runtime (ms)", 2),
    ] {
        let chart = result.chart(
            format!("{ylabel} vs k — relational algorithms"),
            ylabel,
            |i| match pick {
                0 => i.are,
                1 => i.gcp,
                _ => i.runtime_ms,
            },
        );
        let (svg, csv) = export::export_xy_chart(&chart, dir.join(name)).expect("write charts");
        println!("wrote {} and {}", svg.display(), csv.display());
    }
}
