//! The paper's healthcare motivation: "a large class of medical
//! studies aims to discover associations between patient demographics
//! and diseases" — but some diagnoses are too sensitive to risk
//! re-identification.
//!
//! ```sh
//! cargo run --example medical_rt
//! ```
//!
//! Patient records carry demographics plus a set of diagnosis codes
//! (the transaction attribute). The publisher derives a **privacy
//! policy** protecting rare diagnoses (the identifying ones) and a
//! **utility policy** that only lets diagnoses generalize within
//! frequency bands (so a rare cancer is never lumped with the common
//! cold), then runs COAT and verifies the policy on the published
//! output — the Configuration Editor + Policy Specification Module
//! workflow of the paper.

use secreta::core::config::{MethodSpec, TxAlgo};
use secreta::core::policy::{generate_privacy, generate_utility, PrivacyStrategy, UtilityStrategy};
use secreta::core::transaction::satisfies_privacy;
use secreta::core::{anonymizer, SessionContext};
use secreta::gen::DatasetSpec;

fn main() {
    // diagnoses follow a heavy-tailed distribution: a few common
    // conditions, a long tail of rare ones
    let mut spec = DatasetSpec::adult_like(800, 13);
    spec.n_items = 120;
    spec.item_skew = 1.3;
    let table = spec.generate();

    // the Policy Specification Module's automatic strategies
    let privacy = generate_privacy(&table, &PrivacyStrategy::RareItems { max_support: 0.02 });
    let utility = generate_utility(&table, &UtilityStrategy::FrequencyBands { bands: 6 }, None);
    println!(
        "policies: {} privacy constraints (rare diagnoses), {} utility groups; coverage {:.0}%",
        privacy.len(),
        utility.len(),
        utility.coverage(&table) * 100.0
    );

    let ctx = SessionContext::auto(table, 4)
        .expect("hierarchies build")
        .with_policies(Some(privacy.clone()), Some(utility));

    let spec = MethodSpec::Transaction {
        algo: TxAlgo::Coat,
        k: 5,
        m: 1,
    };
    println!("method:  {}", spec.label());
    let out = anonymizer::run(&ctx, &spec, 1).expect("COAT runs");

    // verify from the published output alone
    let ok = satisfies_privacy(&out.anon, &privacy, 5, None);
    println!("policy satisfied on published data: {ok}");
    assert!(ok, "COAT must satisfy its privacy policy");

    let tx = out.anon.tx.as_ref().expect("transaction part");
    let merged = tx.domain.iter().filter(|e| e.leaf_count(None) > 1).count();
    println!(
        "published item domain: {} generalized items ({merged} merged sets), {} suppressed diagnoses",
        tx.domain.len(),
        tx.suppressed.len()
    );
    println!(
        "utility: UL={:.4}, transaction GCP={:.4}, runtime {:.1} ms",
        out.indicators.ul, out.indicators.tx_gcp, out.indicators.runtime_ms
    );

    // the same policies drive PCTA — the paper's other policy-based
    // algorithm — for an immediate comparison
    let pcta = MethodSpec::Transaction {
        algo: TxAlgo::Pcta,
        k: 5,
        m: 1,
    };
    let out2 = anonymizer::run(&ctx, &pcta, 1).expect("PCTA runs");
    println!(
        "PCTA for comparison: UL={:.4}, txGCP={:.4}, runtime {:.1} ms, verified={}",
        out2.indicators.ul,
        out2.indicators.tx_gcp,
        out2.indicators.runtime_ms,
        out2.indicators.verified
    );
}
